// Package catalog is a thread-safe manager for a *corpus* of concurrent
// XML documents — the collection layer the paper's framework assumes when
// it positions itself as infrastructure for document-centric collections
// (persistent storage is "ongoing work" in §1; package store supplies the
// format, this package supplies the serving-side manager over it).
//
// A Catalog maps document ids to source files under one directory:
//
//   - name.gdag           — binary GODDAG (package store)
//   - name.xml            — single-file representation, sniffed (standoff,
//     milestones, fragmentation, or plain single-hierarchy XML)
//   - name/ (directory)   — a distributed document: one XML file per
//     hierarchy, each hierarchy named after its file
//
// Documents load lazily on first Get. Three mechanisms make the catalog
// safe and predictable under concurrent query traffic:
//
//   - Singleflight loads: N concurrent Gets of a cold document trigger
//     exactly one parse; the others block on the in-flight load and share
//     its result.
//   - Index pre-warming: heap loads call (*goddag.Document).Warm before
//     publishing, so the lazily built query indexes (element cache, span
//     index, ordinals, name index) are resident before the first query —
//     cold documents never serialize their first wave of queries on a
//     lazy index rebuild. Mapped .gdag documents (format v3) are the
//     deliberate exception: they open without decoding — stat + mmap +
//     header validation — and materialize nodes lazily off the mapping,
//     so pre-warming would forfeit the microsecond open.
//   - A byte-budgeted LRU: each resident document is charged its
//     estimated footprint (goddag.Footprint; for mapped documents only
//     the resident bytes actually materialized, rechecked on hits);
//     when the total exceeds the budget, least-recently-used documents
//     are dropped. Eviction only forgets the catalog's reference:
//     queries still running against an evicted document keep a
//     consistent snapshot and remain valid; memory (and the file
//     mapping) is reclaimed when they finish. Documents with unsaved
//     edits (dirty) or an edit in flight are never evicted.
//
// Documents are editable. Each entry carries a read/write lock: View
// runs a reader under the read lock (any number in parallel), Update
// runs an editor under the write lock (writers serialize, readers see
// either the pre- or post-edit state, never a torn one). A successful
// Update is persisted immediately — the document is encoded to
// <id>.gdag in the catalog directory via an atomic temp-file + rename
// (store.Save) and the entry repoints to that file, so a later eviction
// and reload reproduces the edited document. The dirty flag is visible
// in stats only in the window where a save failed.
//
// Get remains for read-only deployments and statistics: it returns the
// document without read-locking it, so callers that run concurrently
// with Update must use View instead. All Catalog methods are safe for
// concurrent use.
//
// Every blocking method has a Context variant (GetContext, ViewContext,
// UpdateContext, UpdateBatchContext) that bounds its *waiting* — for the
// per-document lock, or for a cold load — by the caller's context.
// Shared work is never aborted on a waiter's behalf: an in-flight load
// finishes and publishes for the remaining waiters, and an update past
// its commit point persists in full. The context-free names delegate
// with context.Background().
package catalog

import (
	"bytes"
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/goddag"
	"repro/internal/obs"
	"repro/internal/store"
)

// Options configure a Catalog.
type Options struct {
	// Budget is the resident-byte budget for loaded documents
	// (goddag.Footprint estimates). Zero means unlimited. The most
	// recently used document is never evicted, so a single document
	// larger than the budget still serves.
	Budget int64

	// FS is the filesystem the durability layer (saves and write-ahead
	// logs) runs on. Nil means the real one; tests inject faults through
	// a faultfs.Injector.
	FS faultfs.FS

	// DisableWAL turns off per-document write-ahead logging. With the
	// WAL on (the default), every committed edit is durable once its
	// log record is fsynced — before the document's indexes are even
	// repaired — and a crash replays the log tail on the next open.
	// Disabled, durability reverts to save-on-commit alone: an edit
	// whose save fails survives only in memory.
	DisableWAL bool

	// SaveRetries is the number of attempts each commit's save gets
	// before it is declared failed (default 3). Retries back off
	// exponentially from RetryBase (default 5ms) capped at RetryCap
	// (default 250ms).
	SaveRetries int
	RetryBase   time.Duration
	RetryCap    time.Duration

	// FailThreshold is the number of consecutive failed persists after
	// which a document degrades to read-only; the whole catalog degrades
	// at twice that. Default 3. Degradation is sticky until restart.
	FailThreshold int

	// NegCacheTTL bounds how long a failed load is served from the
	// negative cache before the source is retried; repeated failures
	// back off exponentially (capped at 64x). Zero means the 1s
	// default; negative caches failures until Evict, the pre-WAL
	// behavior.
	NegCacheTTL time.Duration

	// Obs, when non-nil, receives the catalog's metrics: load/hit/
	// eviction counters, resident-set gauges, and latency histograms
	// for cold loads, lock waits, WAL appends, and saves. Nil disables
	// instrumentation at zero cost.
	Obs *obs.Registry
}

// Durability defaults (see Options).
const (
	defaultSaveRetries   = 3
	defaultRetryBase     = 5 * time.Millisecond
	defaultRetryCap      = 250 * time.Millisecond
	defaultFailThreshold = 3
	defaultNegCacheTTL   = time.Second
)

// Catalog serves documents from a directory. Create one with Open.
type Catalog struct {
	dir    string
	budget int64

	// Durability configuration, fixed at Open.
	fsys          faultfs.FS
	walOn         bool
	saveRetries   int
	retryBase     time.Duration
	retryCap      time.Duration
	failThreshold int
	negTTL        time.Duration

	// now and sleep are the clock seams: tests pin them to step time
	// through negative-cache TTLs and retry backoffs instantly.
	now   func() time.Time
	sleep func(time.Duration)

	mu       sync.Mutex
	entries  map[string]*entry
	ids      []string   // sorted
	lru      *list.List // of *entry: resident entries, most recent first
	resident int64

	loads       uint64
	hits        uint64
	evictions   uint64
	v2Fallbacks uint64 // .gdag opens that fell back to the v2 decode path

	// Durability counters and catalog-wide degradation (guarded by mu).
	recovered    uint64 // documents that replayed at least one WAL record
	replayed     uint64 // WAL records applied across all recoveries
	saveFailures uint64 // commits whose save failed after retries
	failStreak   int    // consecutive failed persists, catalog-wide
	readOnly     bool   // degraded: persistent storage failures

	// onLoad, when set (tests), runs inside each document load, after the
	// load has been registered as in-flight and before its result is
	// published.
	onLoad func(id string)

	// met holds the pre-resolved metric handles (see obs.go); zero-value
	// (all-nil) when no registry was supplied.
	met catMetrics
}

// entry is one catalogued document. The resident fields are guarded by
// Catalog.mu; id is immutable after Open; paths/format repoint (under
// Catalog.mu) to the saved .gdag file after the first committed edit.
type entry struct {
	id     string
	paths  []string // source files (several for a distributed directory)
	format string   // cliutil.Load format, known from the Open scan

	doc    *core.Document // nil when not resident
	bytes  int64
	mapped bool          // resident copy is backed by a file mapping (v3 open)
	elem   *list.Element // position in Catalog.lru, valid while resident

	loads   uint64
	hits    uint64
	lastErr error // failed load, negative-cached until retryAt (or Evict)

	// Negative-cache state: a failed load is served from lastErr until
	// retryAt, then retried; errCount drives the exponential backoff.
	retryAt  time.Time
	errCount int

	flight *flight // in-progress load, nil otherwise

	// rw orders readers and writers of the resident document: View holds
	// the read side for the whole evaluation, Update the write side for
	// the whole edit + save. It outlives evictions (entries are never
	// deleted), so a reload under a held lock stays ordered. Acquisition
	// is context-bounded (ctxRWMutex): a request whose deadline expires
	// while queued behind a long edit or read barrage gives up its place
	// instead of pinning a goroutine until the lock frees.
	rw      ctxRWMutex
	editing int    // Updates in flight or queued (guards eviction)
	dirty   bool   // edited state not yet persisted (save failed)
	edits   uint64 // committed edit transactions

	// Write-ahead log state. wal is opened on first load (replaying any
	// surviving records) and kept for the entry's lifetime; it is only
	// touched under the singleflight load or the entry's write lock.
	wal      *store.WAL
	replayed uint64 // WAL records applied into this document at load

	// fp caches the document's persisted-state fingerprint (the WAL
	// record pre-state stamp) so back-to-back edit batches do not pay an
	// encode pass each to recompute it. Guarded by rw (write side).
	fp      uint32
	fpValid bool

	// Degradation state (guarded by Catalog.mu): consecutive failed
	// persists; at the catalog's FailThreshold the document becomes
	// read-only until restart.
	persistFails int
	readOnly     bool
}

// flight is one in-progress load; concurrent Gets of the same cold
// document share it instead of loading again.
type flight struct {
	done chan struct{}
	doc  *core.Document
	err  error
}

// ErrNotFound reports an id the catalog does not know.
type ErrNotFound struct{ ID string }

// Error implements the error interface.
func (e *ErrNotFound) Error() string { return fmt.Sprintf("catalog: no document %q", e.ID) }

// Open scans dir and returns a catalog of the documents found. No
// document is loaded yet, with one exception: documents that left a
// non-empty write-ahead log behind (a crash between an edit commit and
// its save) are loaded eagerly so their logged edits are replayed and
// re-persisted before the catalog starts serving. A recovery failure
// does not fail Open — it is cached on the entry like any load error.
func Open(dir string, opts Options) (*Catalog, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	c := &Catalog{dir: dir, budget: opts.Budget, entries: make(map[string]*entry), lru: list.New()}
	c.fsys = opts.FS
	if c.fsys == nil {
		c.fsys = faultfs.OS
	}
	c.walOn = !opts.DisableWAL
	c.saveRetries = opts.SaveRetries
	if c.saveRetries <= 0 {
		c.saveRetries = defaultSaveRetries
	}
	c.retryBase = opts.RetryBase
	if c.retryBase <= 0 {
		c.retryBase = defaultRetryBase
	}
	c.retryCap = opts.RetryCap
	if c.retryCap <= 0 {
		c.retryCap = defaultRetryCap
	}
	c.failThreshold = opts.FailThreshold
	if c.failThreshold <= 0 {
		c.failThreshold = defaultFailThreshold
	}
	c.negTTL = opts.NegCacheTTL
	if c.negTTL == 0 {
		c.negTTL = defaultNegCacheTTL
	}
	c.now = time.Now
	c.sleep = time.Sleep
	c.registerMetrics(opts.Obs)
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, ".") {
			continue
		}
		if de.IsDir() {
			sub, err := os.ReadDir(filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			var paths []string
			for _, f := range sub {
				if !f.IsDir() && strings.HasSuffix(f.Name(), ".xml") {
					paths = append(paths, filepath.Join(dir, name, f.Name()))
				}
			}
			if len(paths) > 0 {
				sort.Strings(paths)
				format := "distributed"
				if len(paths) == 1 {
					format = "auto" // single file in a subdir: sniff it
				}
				c.add(name, paths, format)
			}
			continue
		}
		ext := filepath.Ext(name)
		if ext != ".xml" && ext != ".gdag" {
			continue
		}
		format := "auto" // .xml: sniff standoff/milestones/fragmentation/plain
		if ext == ".gdag" {
			format = "gdag"
		}
		c.add(strings.TrimSuffix(name, ext), []string{filepath.Join(dir, name)}, format)
	}
	sort.Strings(c.ids)
	if c.walOn {
		for _, id := range c.ids {
			if fi, err := c.fsys.Stat(c.walPath(id)); err == nil && fi.Size() > store.WALHeaderLen {
				c.Get(id) // replay + converge; errors are cached on the entry
			}
		}
	}
	return c, nil
}

func (c *Catalog) add(id string, paths []string, format string) {
	if prev, dup := c.entries[id]; dup {
		// Several source forms under one id (name.gdag next to name.xml
		// or name/): the binary .gdag wins — it is what save-on-commit
		// writes, so edits must not be shadowed by a stale XML source —
		// then the directory form, then single files in ReadDir order.
		if format == "gdag" && prev.format != "gdag" {
			prev.paths, prev.format = paths, format
		}
		return
	}
	c.entries[id] = &entry{id: id, paths: paths, format: format}
	c.ids = append(c.ids, id)
}

// IDs returns all document ids, sorted.
func (c *Catalog) IDs() []string {
	out := make([]string, len(c.ids))
	copy(out, c.ids)
	return out
}

// Get returns the document with the given id, loading (and index-warming)
// it on first use. Concurrent Gets of the same cold document share one
// load. The returned document remains valid even if the catalog later
// evicts it, but Get takes no read lock: callers that may run
// concurrently with Update on the same document must use View instead.
// Get never gives up waiting; request-scoped callers use GetContext.
func (c *Catalog) Get(id string) (*core.Document, error) {
	return c.GetContext(context.Background(), id)
}

// GetContext is Get bounded by ctx: the wait for a cold document's load
// (whether this call started it or joined one in flight) ends early with
// ctx.Err() when the caller's deadline or cancellation fires first. The
// load itself runs in its own goroutine and is NOT aborted by any
// waiter's context — it completes and publishes its result for the other
// waiters and for future Gets, so one impatient request can neither
// poison a cold document for everyone else nor waste the parse work
// already done.
func (c *Catalog) GetContext(ctx context.Context, id string) (*core.Document, error) {
	c.mu.Lock()
	e, ok := c.entries[id]
	if !ok {
		c.mu.Unlock()
		return nil, &ErrNotFound{ID: id}
	}
	if e.doc != nil {
		e.hits++
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.refreshBytesLocked(e)
		c.evictLocked()
		doc := e.doc
		c.mu.Unlock()
		return doc, nil
	}
	if e.lastErr != nil {
		// Negative cache: a failed load costs a full parse, so a broken
		// source keeps returning its error without re-parsing — but only
		// until the TTL expires (repeated failures back off), so a
		// transiently broken source heals without a manual Evict.
		if c.negTTL < 0 || c.now().Before(e.retryAt) {
			err := e.lastErr
			c.mu.Unlock()
			return nil, err
		}
		e.lastErr = nil // expired: retry the load below
	}
	f := e.flight
	if f == nil {
		// Singleflight: first caller starts the load; everyone (including
		// this caller) waits on the same flight.
		f = &flight{done: make(chan struct{})}
		e.flight = f
		go c.runLoad(e, f)
	}
	c.mu.Unlock()
	// The wait for the (possibly joined) singleflight load is the
	// request's own cold-start cost — attribute it to the load stage.
	sp := obs.TraceFrom(ctx).Begin("load")
	defer sp.End()
	select {
	case <-f.done:
		return f.doc, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// runLoad performs one singleflight load and publishes its result. It
// runs detached from any caller's context: abandoning waiters must not
// abort or poison the shared load. f.doc/f.err are written before
// close(f.done), so waiters released by the close read them safely.
func (c *Catalog) runLoad(e *entry, f *flight) {
	start := time.Now()
	doc, bytes, mapped, err := c.load(e)
	if err == nil {
		c.met.coldLoad.Observe(time.Since(start))
	}

	c.mu.Lock()
	e.flight = nil
	f.doc, f.err = doc, err
	if err == nil {
		e.doc = doc
		e.bytes = bytes
		e.mapped = mapped
		e.loads++
		c.loads++
		e.errCount = 0
		e.elem = c.lru.PushFront(e)
		c.resident += bytes
		c.evictLocked()
	} else {
		e.lastErr = err
		e.errCount++
		backoff := c.negTTL << min(e.errCount-1, 6) // caps at 64x TTL
		e.retryAt = c.now().Add(backoff)
	}
	c.mu.Unlock()
	close(f.done)
}

// load parses one document from its source files, replays any surviving
// write-ahead-log records into it, and pre-warms its query indexes. Runs
// without the catalog lock: loads of *different* documents proceed in
// parallel. The mapped bool reports a view-backed (mmap v3) document —
// those skip the pre-warm and charge only their resident bytes.
func (c *Catalog) load(e *entry) (*core.Document, int64, bool, error) {
	if c.onLoad != nil {
		c.onLoad(e.id)
	}
	doc, err := c.loadSource(e)
	if err != nil {
		return nil, 0, false, fmt.Errorf("catalog: load %q: %w", e.id, err)
	}
	if c.walOn {
		doc, err = c.recover(e, doc)
		if err != nil {
			return nil, 0, false, err
		}
	}
	g := doc.GODDAG()
	if rb, ok := g.ResidentFootprint(); ok {
		// Mapped open: skip the index pre-warm — materializing here would
		// read the whole file back and forfeit the open-without-decode
		// win. Only the touched bytes charge the budget; Get hits and
		// Stats recharge the entry as lazy materialization grows it.
		return doc, rb, true, nil
	}
	g.Warm()
	return doc, g.Footprint(), false, nil
}

// loadSource parses the document from its files. A single .gdag source
// opens through the mapping path — for a v3 file that is a stat + mmap
// + header validation, no decode — while v2 files fall back to the
// streaming decoder (counted; they migrate to v3 on their next save).
func (c *Catalog) loadSource(e *entry) (*core.Document, error) {
	if e.format == "gdag" && len(e.paths) == 1 {
		start := time.Now()
		m, err := store.OpenMappedFile(c.fsys, e.paths[0])
		if err == nil {
			var g *goddag.Document
			if g, err = m.Document(); err != nil {
				m.Close()
			} else {
				c.met.openMapped.Observe(time.Since(start))
				for _, n := range m.SectionSizes() {
					c.met.sectionBytes.ObserveValue(int64(n))
				}
				return core.FromGODDAG(g), nil
			}
		}
		if !errors.Is(err, store.ErrV2) {
			return nil, err
		}
		c.mu.Lock()
		c.v2Fallbacks++
		c.mu.Unlock()
	}
	return cliutil.Load(e.format, e.paths)
}

// refreshBytesLocked re-reads a mapped entry's footprint — it grows as
// queries materialize nodes off the mapping — and folds the delta into
// the catalog total. While the document is view-backed this is one
// atomic read; when an edit has promoted it to the heap the entry is
// recharged once at the full heap estimate and stops being mapped.
// Heap-loaded entries return immediately, keeping Get hits cheap.
func (c *Catalog) refreshBytesLocked(e *entry) {
	if e.doc == nil || !e.mapped {
		return
	}
	g := e.doc.GODDAG()
	nb, ok := g.ResidentFootprint()
	if !ok {
		nb = g.Footprint()
		e.mapped = false
	}
	if nb != e.bytes {
		c.resident += nb - e.bytes
		e.bytes = nb
	}
}

// evictLocked drops least-recently-used documents until the resident
// bytes fit the budget. The front (most recent) entry always stays, so an
// over-budget document can still serve; dirty or mid-edit documents are
// skipped — dropping them would lose unsaved edits.
func (c *Catalog) evictLocked() {
	if c.budget <= 0 {
		return
	}
	el := c.lru.Back()
	for c.resident > c.budget && el != nil && el != c.lru.Front() {
		prev := el.Prev()
		if e := el.Value.(*entry); !e.dirty && e.editing == 0 {
			c.dropLocked(e)
		}
		el = prev
	}
}

func (c *Catalog) dropLocked(e *entry) {
	c.lru.Remove(e.elem)
	c.resident -= e.bytes
	// Dropping the reference is also what unmaps a mapped document: the
	// mapping's finalizer releases the pages once the last query holding
	// the document finishes and the GC collects it.
	e.doc = nil
	e.bytes = 0
	e.mapped = false
	e.elem = nil
	c.evictions++
}

// Evict drops the document from the resident set if loaded (or clears a
// cached load failure), reporting whether anything was cleared. Queries
// already running against an evicted document are unaffected. Documents
// with unsaved edits or an edit in flight are not evicted.
func (c *Catalog) Evict(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	if e.lastErr != nil {
		// Manual clear: forget the failure and its backoff entirely.
		e.lastErr = nil
		e.errCount = 0
		e.retryAt = time.Time{}
		return true
	}
	if e.doc == nil || e.dirty || e.editing > 0 {
		return false
	}
	c.dropLocked(e)
	c.evictions-- // administrative drop, not a pressure eviction
	return true
}

// View runs fn with the document under its read lock: any number of
// views proceed in parallel, and none overlaps an Update of the same
// document, so fn evaluates against a consistent snapshot. The document
// must not escape fn.
func (c *Catalog) View(id string, fn func(*core.Document) error) error {
	return c.ViewContext(context.Background(), id, fn)
}

// ViewContext is View bounded by ctx: both the read-lock acquisition
// (queued behind a long edit) and a cold load respect the caller's
// deadline, returning ctx.Err() without running fn. Once fn is running,
// cancellation is fn's own job — pass ctx into the evaluation (e.g.
// xpath.Options.Context) to unwind it.
func (c *Catalog) ViewContext(ctx context.Context, id string, fn func(*core.Document) error) error {
	c.mu.Lock()
	e, ok := c.entries[id]
	c.mu.Unlock()
	if !ok {
		return &ErrNotFound{ID: id}
	}
	tr := obs.TraceFrom(ctx)
	lockStart := lockWaitStart(c.met.lockRead, tr)
	if err := e.rw.RLock(ctx); err != nil {
		return err
	}
	finishLockWait(lockStart, c.met.lockRead, tr)
	defer e.rw.RUnlock()
	doc, err := c.GetContext(ctx, id)
	if err != nil {
		return err
	}
	return fn(doc)
}

// IndexStats returns the document's derived-index statistics — the
// name-bucket and ordinal-range cardinalities the xpath planner reads as
// selectivity estimates — under the document's read lock, loading it
// first when not resident. Operators use it (via GET /docs/{id}) to see
// the inputs an explain'd plan was costed from.
func (c *Catalog) IndexStats(id string) (goddag.IndexStats, error) {
	var st goddag.IndexStats
	err := c.View(id, func(doc *core.Document) error {
		st = doc.GODDAG().IndexStats()
		return nil
	})
	return st, err
}

// Update runs fn with the document under its write lock, then persists
// the result: writers serialize per document, no View overlaps, and a
// successful fn is saved to <id>.gdag in the catalog directory through
// an atomic temp-file + rename before Update returns. The entry then
// sources from that file, so eviction + reload reproduces the edited
// document. fn must leave the document consistent on error (the editor's
// transactions roll back automatically); nothing is persisted then.
//
// A failed save leaves the in-memory edit in place and the entry marked
// dirty: the document keeps serving and cannot be evicted, and the next
// successful Update clears the flag. With the write-ahead log on, the
// committed post-state is also snapshot-logged before the save, so even
// a "not persisted" edit survives a crash; Update still reports the
// save failure so callers see the degraded disk. Edits whose ops are
// known up front should use UpdateBatch, which logs the (much smaller)
// op batch instead and treats the fsynced log record as the commit
// point.
func (c *Catalog) Update(id string, fn func(*core.Document) error) error {
	return c.UpdateContext(context.Background(), id, fn)
}

// UpdateContext is Update bounded by ctx — but only up to the point of
// no return: the write-lock acquisition and a cold load give up with
// ctx.Err() (nothing has changed), while a commit already past fn is
// always persisted in full, so cancellation can never tear an edit or
// abandon a committed-but-unsaved state.
func (c *Catalog) UpdateContext(ctx context.Context, id string, fn func(*core.Document) error) error {
	e, err := c.beginEdit(id)
	if err != nil {
		return err
	}
	defer c.endEdit(e)
	tr := obs.TraceFrom(ctx)
	lockStart := lockWaitStart(c.met.lockWrite, tr)
	if err := e.rw.Lock(ctx); err != nil {
		return err
	}
	finishLockWait(lockStart, c.met.lockWrite, tr)
	defer e.rw.Unlock()
	doc, err := c.GetContext(ctx, id)
	if err != nil {
		return err
	}

	if err := fn(doc); err != nil {
		return err
	}

	// Log the committed post-state before saving: an arbitrary closure
	// (undo, redo, programmatic edits) is not expressible as an op
	// batch, so the record is a full snapshot — naturally idempotent at
	// replay. A crash in the window between the editor commit and this
	// append loses the closure's effect; batches logged through
	// UpdateBatch close that window.
	walDurable := false
	if w := c.walFor(e); w != nil {
		var buf bytes.Buffer
		if doc.Save(&buf) == nil {
			appendStart := time.Now()
			if w.Append(store.RecordSnapshot, 0, buf.Bytes()) == nil {
				walDurable = true
			}
			c.met.walAppend.Observe(time.Since(appendStart))
		}
	}
	return c.persistCommit(e, doc, walDurable, true, nil)
}

// DocStats describes one catalogued document.
type DocStats struct {
	ID       string   `json:"id"`
	Paths    []string `json:"paths"`
	Resident bool     `json:"resident"`
	Mapped   bool     `json:"mapped,omitempty"` // resident copy is mmap-backed (v3)
	Bytes    int64    `json:"bytes,omitempty"`  // footprint estimate while resident
	Loads    uint64   `json:"loads"`
	Hits     uint64   `json:"hits"`
	Edits    uint64   `json:"edits,omitempty"`     // committed edit transactions
	Dirty    bool     `json:"dirty,omitempty"`     // edited state not yet persisted
	ReadOnly bool     `json:"read_only,omitempty"` // degraded: persistent save failures
	Replayed uint64   `json:"replayed,omitempty"`  // WAL records recovered into this doc
	Error    string   `json:"error,omitempty"`     // cached load failure (expires, or Evict)
}

// Stats summarizes the catalog.
type Stats struct {
	Documents int    `json:"documents"`
	Resident  int    `json:"resident"`
	Bytes     int64  `json:"bytes"`
	Budget    int64  `json:"budget"`
	Loads     uint64 `json:"loads"`
	Hits      uint64 `json:"hits"`
	Evictions uint64 `json:"evictions"`

	// Durability state: crash recoveries and degradation (see the
	// package comment on the write-ahead log).
	ReadOnly     bool   `json:"read_only,omitempty"`     // catalog-wide degradation
	Recovered    uint64 `json:"recovered,omitempty"`     // docs that replayed WAL records
	Replayed     uint64 `json:"replayed,omitempty"`      // WAL records applied in recoveries
	SaveFailures uint64 `json:"save_failures,omitempty"` // commits not persisted after retries

	Docs []DocStats `json:"docs"`
}

// Stats returns a snapshot of catalog and per-document counters.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Documents: len(c.ids),
		Budget:    c.budget,
		Loads:     c.loads,
		Hits:      c.hits,
		Evictions: c.evictions,

		ReadOnly:     c.readOnly,
		Recovered:    c.recovered,
		Replayed:     c.replayed,
		SaveFailures: c.saveFailures,

		Docs: make([]DocStats, 0, len(c.ids)),
	}
	for _, id := range c.ids {
		e := c.entries[id]
		ds := c.docStatsLocked(e)
		if ds.Resident {
			s.Resident++
		}
		s.Docs = append(s.Docs, ds)
	}
	// After the per-document refresh: mapped entries may have grown as
	// their lazy materialization was touched since the last snapshot.
	s.Bytes = c.resident
	return s
}

func (c *Catalog) docStatsLocked(e *entry) DocStats {
	c.refreshBytesLocked(e)
	ds := DocStats{
		ID: e.id, Paths: e.paths,
		Resident: e.doc != nil, Mapped: e.mapped, Loads: e.loads, Hits: e.hits,
		Edits: e.edits, Dirty: e.dirty,
		ReadOnly: e.readOnly, Replayed: e.replayed,
	}
	if e.doc != nil {
		ds.Bytes = e.bytes
	}
	if e.lastErr != nil {
		ds.Error = e.lastErr.Error()
	}
	return ds
}

// Doc returns the stats of one document, reporting ok=false for unknown
// ids.
func (c *Catalog) Doc(id string) (DocStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return DocStats{}, false
	}
	return c.docStatsLocked(e), true
}
