// Package catalog is a thread-safe manager for a *corpus* of concurrent
// XML documents — the collection layer the paper's framework assumes when
// it positions itself as infrastructure for document-centric collections
// (persistent storage is "ongoing work" in §1; package store supplies the
// format, this package supplies the serving-side manager over it).
//
// A Catalog maps document ids to source files under one directory:
//
//   - name.gdag           — binary GODDAG (package store)
//   - name.xml            — single-file representation, sniffed (standoff,
//     milestones, fragmentation, or plain single-hierarchy XML)
//   - name/ (directory)   — a distributed document: one XML file per
//     hierarchy, each hierarchy named after its file
//
// Documents load lazily on first Get. Three mechanisms make the catalog
// safe and predictable under concurrent query traffic:
//
//   - Singleflight loads: N concurrent Gets of a cold document trigger
//     exactly one parse; the others block on the in-flight load and share
//     its result.
//   - Index pre-warming: loads call (*goddag.Document).Warm before
//     publishing, so the lazily built query indexes (element cache, span
//     index, ordinals, name index) are resident before the first query —
//     cold documents never serialize their first wave of queries on a
//     lazy index rebuild.
//   - A byte-budgeted LRU: each resident document is charged its
//     estimated footprint (goddag.Footprint); when the total exceeds the
//     budget, least-recently-used documents are dropped. Eviction only
//     forgets the catalog's reference — documents are immutable while
//     served, so queries still running against an evicted document remain
//     valid; memory is reclaimed when they finish.
//
// Loaded documents are read-only: callers must not mutate them (see the
// concurrency contract in package goddag). All Catalog methods are safe
// for concurrent use.
package catalog

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/cliutil"
	"repro/internal/core"
)

// Options configure a Catalog.
type Options struct {
	// Budget is the resident-byte budget for loaded documents
	// (goddag.Footprint estimates). Zero means unlimited. The most
	// recently used document is never evicted, so a single document
	// larger than the budget still serves.
	Budget int64
}

// Catalog serves documents from a directory. Create one with Open.
type Catalog struct {
	dir    string
	budget int64

	mu       sync.Mutex
	entries  map[string]*entry
	ids      []string   // sorted
	lru      *list.List // of *entry: resident entries, most recent first
	resident int64

	loads     uint64
	hits      uint64
	evictions uint64

	// onLoad, when set (tests), runs inside each document load, after the
	// load has been registered as in-flight and before its result is
	// published.
	onLoad func(id string)
}

// entry is one catalogued document. The resident fields are guarded by
// Catalog.mu; source identity (id, paths) is immutable after Open.
type entry struct {
	id     string
	paths  []string // source files (several for a distributed directory)
	format string   // cliutil.Load format, known from the Open scan

	doc   *core.Document // nil when not resident
	bytes int64
	elem  *list.Element // position in Catalog.lru, valid while resident

	loads   uint64
	hits    uint64
	lastErr error // failed load, cached until Evict clears it

	flight *flight // in-progress load, nil otherwise
}

// flight is one in-progress load; concurrent Gets of the same cold
// document share it instead of loading again.
type flight struct {
	done chan struct{}
	doc  *core.Document
	err  error
}

// ErrNotFound reports an id the catalog does not know.
type ErrNotFound struct{ ID string }

// Error implements the error interface.
func (e *ErrNotFound) Error() string { return fmt.Sprintf("catalog: no document %q", e.ID) }

// Open scans dir and returns a catalog of the documents found. No
// document is loaded yet.
func Open(dir string, opts Options) (*Catalog, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	c := &Catalog{dir: dir, budget: opts.Budget, entries: make(map[string]*entry), lru: list.New()}
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, ".") {
			continue
		}
		if de.IsDir() {
			sub, err := os.ReadDir(filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			var paths []string
			for _, f := range sub {
				if !f.IsDir() && strings.HasSuffix(f.Name(), ".xml") {
					paths = append(paths, filepath.Join(dir, name, f.Name()))
				}
			}
			if len(paths) > 0 {
				sort.Strings(paths)
				format := "distributed"
				if len(paths) == 1 {
					format = "auto" // single file in a subdir: sniff it
				}
				c.add(name, paths, format)
			}
			continue
		}
		ext := filepath.Ext(name)
		if ext != ".xml" && ext != ".gdag" {
			continue
		}
		format := "auto" // .xml: sniff standoff/milestones/fragmentation/plain
		if ext == ".gdag" {
			format = "gdag"
		}
		c.add(strings.TrimSuffix(name, ext), []string{filepath.Join(dir, name)}, format)
	}
	sort.Strings(c.ids)
	return c, nil
}

func (c *Catalog) add(id string, paths []string, format string) {
	if _, dup := c.entries[id]; dup {
		// name.xml next to name.gdag (or name/): keep the first, which
		// ReadDir's sorted order makes the .gdag / directory form.
		return
	}
	c.entries[id] = &entry{id: id, paths: paths, format: format}
	c.ids = append(c.ids, id)
}

// IDs returns all document ids, sorted.
func (c *Catalog) IDs() []string {
	out := make([]string, len(c.ids))
	copy(out, c.ids)
	return out
}

// Get returns the document with the given id, loading (and index-warming)
// it on first use. Concurrent Gets of the same cold document share one
// load. The returned document is read-only and remains valid even if the
// catalog later evicts it.
func (c *Catalog) Get(id string) (*core.Document, error) {
	c.mu.Lock()
	e, ok := c.entries[id]
	if !ok {
		c.mu.Unlock()
		return nil, &ErrNotFound{ID: id}
	}
	if e.doc != nil {
		e.hits++
		c.hits++
		c.lru.MoveToFront(e.elem)
		doc := e.doc
		c.mu.Unlock()
		return doc, nil
	}
	if e.lastErr != nil {
		// Negative cache: a failed load costs a full parse, so a broken
		// source keeps returning its error without re-parsing until
		// Evict clears it (e.g. after the file is fixed).
		err := e.lastErr
		c.mu.Unlock()
		return nil, err
	}
	if f := e.flight; f != nil {
		// Singleflight: somebody else is already loading; share the result.
		c.mu.Unlock()
		<-f.done
		return f.doc, f.err
	}
	f := &flight{done: make(chan struct{})}
	e.flight = f
	c.mu.Unlock()

	doc, bytes, err := c.load(e)

	c.mu.Lock()
	e.flight = nil
	f.doc, f.err = doc, err
	if err == nil {
		e.doc = doc
		e.bytes = bytes
		e.loads++
		c.loads++
		e.elem = c.lru.PushFront(e)
		c.resident += bytes
		c.evictLocked()
	} else {
		e.lastErr = err
	}
	c.mu.Unlock()
	close(f.done)
	return doc, err
}

// load parses one document from its source files and pre-warms its query
// indexes. Runs without the catalog lock: loads of *different* documents
// proceed in parallel.
func (c *Catalog) load(e *entry) (*core.Document, int64, error) {
	if c.onLoad != nil {
		c.onLoad(e.id)
	}
	doc, err := cliutil.Load(e.format, e.paths)
	if err != nil {
		return nil, 0, fmt.Errorf("catalog: load %q: %w", e.id, err)
	}
	g := doc.GODDAG()
	g.Warm()
	return doc, g.Footprint(), nil
}

// evictLocked drops least-recently-used documents until the resident
// bytes fit the budget. The front (most recent) entry always stays, so an
// over-budget document can still serve.
func (c *Catalog) evictLocked() {
	if c.budget <= 0 {
		return
	}
	for c.resident > c.budget && c.lru.Len() > 1 {
		c.dropLocked(c.lru.Back().Value.(*entry))
	}
}

func (c *Catalog) dropLocked(e *entry) {
	c.lru.Remove(e.elem)
	c.resident -= e.bytes
	e.doc = nil
	e.bytes = 0
	e.elem = nil
	c.evictions++
}

// Evict drops the document from the resident set if loaded (or clears a
// cached load failure), reporting whether anything was cleared. Queries
// already running against an evicted document are unaffected.
func (c *Catalog) Evict(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	if e.lastErr != nil {
		e.lastErr = nil
		return true
	}
	if e.doc == nil {
		return false
	}
	c.dropLocked(e)
	c.evictions-- // administrative drop, not a pressure eviction
	return true
}

// DocStats describes one catalogued document.
type DocStats struct {
	ID       string   `json:"id"`
	Paths    []string `json:"paths"`
	Resident bool     `json:"resident"`
	Bytes    int64    `json:"bytes,omitempty"` // footprint estimate while resident
	Loads    uint64   `json:"loads"`
	Hits     uint64   `json:"hits"`
	Error    string   `json:"error,omitempty"` // cached load failure (cleared by Evict)
}

// Stats summarizes the catalog.
type Stats struct {
	Documents int        `json:"documents"`
	Resident  int        `json:"resident"`
	Bytes     int64      `json:"bytes"`
	Budget    int64      `json:"budget"`
	Loads     uint64     `json:"loads"`
	Hits      uint64     `json:"hits"`
	Evictions uint64     `json:"evictions"`
	Docs      []DocStats `json:"docs"`
}

// Stats returns a snapshot of catalog and per-document counters.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Documents: len(c.ids),
		Bytes:     c.resident,
		Budget:    c.budget,
		Loads:     c.loads,
		Hits:      c.hits,
		Evictions: c.evictions,
		Docs:      make([]DocStats, 0, len(c.ids)),
	}
	for _, id := range c.ids {
		e := c.entries[id]
		ds := c.docStatsLocked(e)
		if ds.Resident {
			s.Resident++
		}
		s.Docs = append(s.Docs, ds)
	}
	return s
}

func (c *Catalog) docStatsLocked(e *entry) DocStats {
	ds := DocStats{
		ID: e.id, Paths: e.paths,
		Resident: e.doc != nil, Loads: e.loads, Hits: e.hits,
	}
	if e.doc != nil {
		ds.Bytes = e.bytes
	}
	if e.lastErr != nil {
		ds.Error = e.lastErr.Error()
	}
	return ds
}

// Doc returns the stats of one document, reporting ok=false for unknown
// ids.
func (c *Catalog) Doc(id string) (DocStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return DocStats{}, false
	}
	return c.docStatsLocked(e), true
}
