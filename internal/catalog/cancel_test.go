package catalog

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestGetContextCancelledWaiterDoesNotPoisonLoad is the central
// singleflight-lifecycle invariant: a waiter that gives up on a cold
// load must only abandon its own wait. The load keeps running, the
// other waiters get the document, and nothing is negative-cached.
func TestGetContextCancelledWaiterDoesNotPoisonLoad(t *testing.T) {
	dir := writeCorpusDir(t, 80)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	c.onLoad = func(string) {
		once.Do(func() { close(started) })
		<-release
	}

	// Waiter A starts the load, then gets cancelled mid-flight.
	ctxA, cancelA := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() {
		_, err := c.GetContext(ctxA, "ms")
		errA <- err
	}()
	<-started

	// Waiter B joins the same in-flight load with no deadline.
	errB := make(chan error, 1)
	go func() {
		doc, err := c.GetContext(context.Background(), "ms")
		if err == nil && doc == nil {
			err = errors.New("nil document without error")
		}
		errB <- err
	}()

	cancelA()
	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err = %v, want context.Canceled", err)
	}
	select {
	case err := <-errB:
		t.Fatalf("patient waiter returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	if err := <-errB; err != nil {
		t.Fatalf("patient waiter after shared load: %v", err)
	}

	// The load published normally: warm hit, exactly one load, no cached
	// error left behind by the cancelled waiter.
	if _, err := c.Get("ms"); err != nil {
		t.Fatalf("Get after cancelled waiter: %v", err)
	}
	ds, ok := c.Doc("ms")
	if !ok || ds.Loads != 1 || ds.Error != "" {
		t.Fatalf("doc stats after cancelled waiter: %+v", ds)
	}
}

// TestViewContextDeadlineBehindWriter: a read whose deadline expires
// while queued behind a long edit returns the deadline error promptly
// instead of waiting the edit out — and the edit itself is unaffected.
func TestViewContextDeadlineBehindWriter(t *testing.T) {
	dir := writeCorpusDir(t, 80)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("plain"); err != nil {
		t.Fatal(err)
	}

	editing := make(chan struct{})
	release := make(chan struct{})
	updErr := make(chan error, 1)
	go func() {
		updErr <- c.Update("plain", func(*core.Document) error {
			close(editing)
			<-release
			return nil
		})
	}()
	<-editing

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = c.ViewContext(ctx, "plain", func(*core.Document) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ViewContext behind writer: err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("ViewContext took %v to give up on a 10ms deadline", d)
	}

	close(release)
	if err := <-updErr; err != nil {
		t.Fatalf("Update around cancelled reader: %v", err)
	}
	// The lock is healthy after the abandoned acquisition.
	if err := c.View("plain", func(*core.Document) error { return nil }); err != nil {
		t.Fatalf("View after writer released: %v", err)
	}
}

// TestUpdateContextCancelledBeforeLockChangesNothing: an update that
// gives up while queued behind readers commits nothing, and its parked
// writer preference is withdrawn so new readers are not stranded.
func TestUpdateContextCancelledBeforeLockChangesNothing(t *testing.T) {
	dir := writeCorpusDir(t, 80)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}

	reading := make(chan struct{})
	release := make(chan struct{})
	viewErr := make(chan error, 1)
	go func() {
		viewErr <- c.View("plain", func(*core.Document) error {
			close(reading)
			<-release
			return nil
		})
	}()
	<-reading

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ran := false
	err = c.UpdateContext(ctx, "plain", func(*core.Document) error { ran = true; return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("UpdateContext behind reader: err = %v, want DeadlineExceeded", err)
	}
	if ran {
		t.Fatal("cancelled UpdateContext ran its edit function")
	}

	// Writer preference was withdrawn: a NEW reader gets in while the
	// first reader still holds the lock (no writer is waiting anymore).
	done := make(chan error, 1)
	go func() {
		done <- c.View("plain", func(*core.Document) error { return nil })
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("reader after cancelled writer: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader stranded behind a cancelled writer's preference")
	}

	close(release)
	if err := <-viewErr; err != nil {
		t.Fatal(err)
	}
	ds, _ := c.Doc("plain")
	if ds.Edits != 0 || ds.Dirty {
		t.Fatalf("cancelled update left a mark: %+v", ds)
	}
	// The write path still works.
	if err := c.Update("plain", func(*core.Document) error { return nil }); err != nil {
		t.Fatalf("Update after cancelled UpdateContext: %v", err)
	}
}
