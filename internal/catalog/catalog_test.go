package catalog

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/drivers"
	"repro/internal/sacx"
	"repro/internal/store"
)

// writeCorpusDir builds a catalog directory holding the same synthetic
// manuscript in three source forms plus a plain XML file:
//
//	ms.gdag       binary GODDAG
//	standoff.xml  standoff representation
//	dist/         distributed (one XML per hierarchy)
//	plain.xml     single-hierarchy plain XML
func writeCorpusDir(t testing.TB, words int) string {
	t.Helper()
	dir := t.TempDir()
	cfg := corpus.DefaultConfig(words)
	doc, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Create(filepath.Join(dir, "ms.gdag"))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Encode(f, doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	so, err := drivers.EncodeStandoff(doc, drivers.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "standoff.xml"), so, 0o644); err != nil {
		t.Fatal(err)
	}

	sub := filepath.Join(dir, "dist")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, h := range doc.HierarchyNames() {
		data, err := sacx.Split(doc, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, h+".xml"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	plain := `<r><w>swa</w> <w>hwaet</w> <w>swa</w></r>`
	if err := os.WriteFile(filepath.Join(dir, "plain.xml"), []byte(plain), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestOpenScansSources(t *testing.T) {
	dir := writeCorpusDir(t, 80)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"dist", "ms", "plain", "standoff"}
	got := c.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	if s := c.Stats(); s.Documents != 4 || s.Resident != 0 || s.Loads != 0 {
		t.Fatalf("fresh catalog stats %+v", s)
	}
}

// TestGetAllFormsAgree loads the same manuscript through all three source
// forms and checks a battery of overlap-aware queries returns identical
// counts — the catalog is format-transparent.
func TestGetAllFormsAgree(t *testing.T) {
	dir := writeCorpusDir(t, 80)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"count(//w)", "count(//line)", "count(//dmg/overlapping::w)",
		"count(//line/covered::w)", "count(//w/ancestor::*)",
	}
	for _, q := range queries {
		var ref string
		for i, id := range []string{"ms", "standoff", "dist"} {
			doc, err := c.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			v, err := doc.QueryValue(q)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = v.String()
			} else if v.String() != ref {
				t.Errorf("%s: %s = %s, ms = %s", id, q, v.String(), ref)
			}
		}
	}
	s := c.Stats()
	if s.Resident != 3 || s.Loads != 3 {
		t.Fatalf("stats after three loads: %+v", s)
	}
	if s.Hits == 0 {
		t.Fatal("repeated Gets recorded no hits")
	}
}

func TestGetNotFound(t *testing.T) {
	c, err := Open(writeCorpusDir(t, 40), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Get("nope")
	var nf *ErrNotFound
	if !errors.As(err, &nf) || nf.ID != "nope" {
		t.Fatalf("Get(nope) = %v", err)
	}
}

// TestSingleflight starts many concurrent Gets of one cold document and
// asserts exactly one load happens — the others share it.
func TestSingleflight(t *testing.T) {
	dir := writeCorpusDir(t, 200)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var loadsObserved atomic.Int64
	release := make(chan struct{})
	c.onLoad = func(id string) {
		loadsObserved.Add(1)
		<-release // hold the load open until all Gets are in flight
	}

	const n = 16
	var wg sync.WaitGroup
	var started sync.WaitGroup
	started.Add(n)
	docs := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			doc, err := c.Get("ms")
			if err != nil {
				t.Error(err)
				return
			}
			docs[i] = doc
		}(i)
	}
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let every Get reach the flight
	close(release)
	wg.Wait()

	if got := loadsObserved.Load(); got != 1 {
		t.Fatalf("observed %d loads under %d concurrent Gets, want 1", got, n)
	}
	for i := 1; i < n; i++ {
		if docs[i] != docs[0] {
			t.Fatal("concurrent Gets returned different documents")
		}
	}
	if s := c.Stats(); s.Loads != 1 {
		t.Fatalf("stats.Loads = %d, want 1", s.Loads)
	}
}

// TestLRUEviction loads documents under a budget sized for roughly one
// resident document and checks cold ones are evicted in LRU order, that
// the budget is respected, and that evicted documents transparently
// reload.
func TestLRUEviction(t *testing.T) {
	dir := writeCorpusDir(t, 300)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Budget: just over one synthetic manuscript.
	ms, err := c.Get("ms")
	if err != nil {
		t.Fatal(err)
	}
	one := ms.GODDAG().Footprint()
	c.Evict("ms")
	c.mu.Lock()
	c.budget = one + one/4
	c.mu.Unlock()

	for _, id := range []string{"ms", "standoff", "dist"} {
		if _, err := c.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Bytes > c.budget && s.Resident > 1 {
		t.Fatalf("resident %d bytes over budget %d with %d docs", s.Bytes, c.budget, s.Resident)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions under byte pressure")
	}
	byID := map[string]DocStats{}
	for _, d := range s.Docs {
		byID[d.ID] = d
	}
	if byID["ms"].Resident {
		t.Fatal("ms (least recently used) still resident")
	}
	if !byID["dist"].Resident {
		t.Fatal("dist (most recently used) was evicted")
	}

	// An evicted document reloads on demand.
	if _, err := c.Get("ms"); err != nil {
		t.Fatal(err)
	}
	if d, _ := c.Doc("ms"); !d.Resident || d.Loads != 3 {
		t.Fatalf("ms after reload: %+v (evict test expects 3 loads)", d)
	}
}

// TestHugeDocumentStillServes checks a single document larger than the
// whole budget is not evict-thrashed: the most recent entry is exempt.
func TestHugeDocumentStillServes(t *testing.T) {
	dir := writeCorpusDir(t, 120)
	c, err := Open(dir, Options{Budget: 1}) // everything is over budget
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("ms"); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Resident != 1 {
		t.Fatalf("resident = %d, want the over-budget document kept", s.Resident)
	}
	// The next document displaces it.
	if _, err := c.Get("standoff"); err != nil {
		t.Fatal(err)
	}
	s = c.Stats()
	if s.Resident != 1 {
		t.Fatalf("resident = %d after second load, want 1", s.Resident)
	}
	if d, _ := c.Doc("ms"); d.Resident {
		t.Fatal("ms still resident after displacement")
	}
}

// TestConcurrentLoadEvictQuery hammers the catalog from many goroutines —
// mixed Gets of the same and different documents, explicit evictions, and
// queries against whatever Get returned — under a budget that forces
// continual eviction. Run with -race in CI.
func TestConcurrentLoadEvictQuery(t *testing.T) {
	dir := writeCorpusDir(t, 150)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := c.Get("ms")
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.budget = ms.GODDAG().Footprint() + ms.GODDAG().Footprint()/2
	c.mu.Unlock()

	ids := []string{"ms", "standoff", "dist", "plain"}
	queries := []string{"count(//w)", "count(//dmg/overlapping::w)", "count(//line/covered::w)"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				id := ids[(g+i)%len(ids)]
				doc, err := c.Get(id)
				if err != nil {
					t.Errorf("Get(%s): %v", id, err)
					return
				}
				q := queries[(g*7+i)%len(queries)]
				if _, err := doc.QueryValue(q); err != nil {
					t.Errorf("%s: %s: %v", id, q, err)
					return
				}
				if i%9 == g%3 {
					c.Evict(ids[(g+i+1)%len(ids)])
				}
			}
		}(g)
	}
	wg.Wait()

	s := c.Stats()
	if s.Loads == 0 || s.Hits == 0 {
		t.Fatalf("implausible stats after stress: %+v", s)
	}
	var total uint64
	for _, d := range s.Docs {
		total += d.Loads
	}
	if total != s.Loads {
		t.Fatalf("per-doc loads %d != catalog loads %d", total, s.Loads)
	}
}

// TestFailedLoadCached asserts a broken source is parsed once, its error
// cached (no re-parse per Get), and that Evict clears the failure so a
// fixed file can be retried.
func TestFailedLoadCached(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken.xml"), []byte("<r><unclosed"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var loads atomic.Int64
	c.onLoad = func(string) { loads.Add(1) }

	_, err1 := c.Get("broken")
	if err1 == nil {
		t.Fatal("broken source loaded successfully")
	}
	_, err2 := c.Get("broken")
	if err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("second Get: %v, want cached %v", err2, err1)
	}
	if got := loads.Load(); got != 1 {
		t.Fatalf("broken source parsed %d times, want 1 (negative cache)", got)
	}
	if d, _ := c.Doc("broken"); d.Error == "" {
		t.Fatal("DocStats does not surface the cached load error")
	}

	// Fix the file; Evict clears the failure and the next Get retries.
	if err := os.WriteFile(filepath.Join(dir, "broken.xml"), []byte("<r><w>ok</w></r>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !c.Evict("broken") {
		t.Fatal("Evict did not clear the cached failure")
	}
	doc, err := c.Get("broken")
	if err != nil {
		t.Fatalf("retry after fix: %v", err)
	}
	if v, err := doc.QueryValue("count(//w)"); err != nil || v.Number() != 1 {
		t.Fatalf("retried doc: %v %v", v, err)
	}
}

// TestWarmLoads asserts loads publish documents with their query indexes
// already built, by measuring nothing: it simply checks Footprint (which
// Warm feeds into the resident accounting) is recorded for every resident
// document.
func TestWarmLoads(t *testing.T) {
	dir := writeCorpusDir(t, 60)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := c.Get("ms")
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := c.Doc("ms"); d.Bytes <= 0 {
		t.Fatalf("resident bytes %d, want > 0", d.Bytes)
	}
	// Warm must not change results: spot-check one query.
	v, err := doc.QueryValue("count(//w)")
	if err != nil {
		t.Fatal(err)
	}
	if v.Number() <= 0 {
		t.Fatalf("count(//w) = %v", v.Number())
	}
}
