package catalog

import (
	"context"
	"sync"
)

// ctxRWMutex is a readers-writer lock whose acquisitions give up when
// the caller's context ends first — the piece sync.RWMutex is missing
// for request-lifecycle serving: a reader queue stuck behind a slow
// writer (or vice versa) must not pin abandoned request goroutines
// until the lock frees.
//
// Semantics match the sync.RWMutex uses it replaces, plus writer
// preference: a parked writer blocks NEW readers, so a steady stream of
// queries cannot starve the edit path (the PR 5/6 write path keeps
// committing under read barrages). Waiters park on a broadcast channel
// that is closed and replaced at every release point; spurious wakeups
// just re-check the state. A cancelled acquisition changes nothing
// except its own bookkeeping — in particular the last cancelled writer
// re-wakes parked readers that its preference was holding back.
//
// The zero value is ready to use. Acquisition methods return nil on
// success or ctx.Err(); the matching release must be called only after
// a successful acquisition.
type ctxRWMutex struct {
	mu      sync.Mutex
	turn    chan struct{} // lazily created; closed + cleared to wake waiters
	readers int           // active readers
	writer  bool          // the write side is held
	waitW   int           // writers parked in Lock (drives reader parking)
}

// gateLocked returns the channel the next wake will close. Lazily
// created so the uncontended paths never allocate.
func (l *ctxRWMutex) gateLocked() chan struct{} {
	if l.turn == nil {
		l.turn = make(chan struct{})
	}
	return l.turn
}

// wakeLocked wakes every parked waiter; they re-evaluate under mu.
func (l *ctxRWMutex) wakeLocked() {
	if l.turn != nil {
		close(l.turn)
		l.turn = nil
	}
}

// RLock acquires the read side, or returns ctx.Err() if ctx ends first.
func (l *ctxRWMutex) RLock(ctx context.Context) error {
	l.mu.Lock()
	for l.writer || l.waitW > 0 {
		gate := l.gateLocked()
		l.mu.Unlock()
		select {
		case <-gate:
		case <-ctx.Done():
			return ctx.Err()
		}
		l.mu.Lock()
	}
	l.readers++
	l.mu.Unlock()
	return nil
}

// RUnlock releases the read side taken by a successful RLock.
func (l *ctxRWMutex) RUnlock() {
	l.mu.Lock()
	l.readers--
	if l.readers == 0 {
		l.wakeLocked()
	}
	l.mu.Unlock()
}

// Lock acquires the write side, or returns ctx.Err() if ctx ends first.
// While any writer waits, new readers park behind it.
func (l *ctxRWMutex) Lock(ctx context.Context) error {
	l.mu.Lock()
	l.waitW++
	for l.writer || l.readers > 0 {
		gate := l.gateLocked()
		l.mu.Unlock()
		select {
		case <-gate:
		case <-ctx.Done():
			l.mu.Lock()
			l.waitW--
			if l.waitW == 0 {
				// Readers may be parked solely on this writer's
				// preference; let them through.
				l.wakeLocked()
			}
			l.mu.Unlock()
			return ctx.Err()
		}
		l.mu.Lock()
	}
	l.waitW--
	l.writer = true
	l.mu.Unlock()
	return nil
}

// Unlock releases the write side taken by a successful Lock.
func (l *ctxRWMutex) Unlock() {
	l.mu.Lock()
	l.writer = false
	l.wakeLocked()
	l.mu.Unlock()
}
