package editor

import (
	"strings"
	"testing"

	"repro/internal/document"
	"repro/internal/dtd"
	"repro/internal/goddag"
	"repro/internal/validate"
)

func newSession(t *testing.T, preval bool) *Session {
	t.Helper()
	doc := goddag.New("r", "swa hwaet swa he us saegde")
	schema := validate.NewSchema()
	schema.Add("words", dtd.MustParse("words", `
<!ELEMENT r (#PCDATA|w|sentence)*>
<!ELEMENT sentence (#PCDATA|w)*>
<!ELEMENT w (#PCDATA)>
<!ATTLIST w lemma CDATA #IMPLIED kind (noun|verb) #IMPLIED>
`))
	schema.Add("physical", dtd.MustParse("physical", `
<!ELEMENT r (line+)>
<!ELEMENT line (#PCDATA)>
`))
	return NewSession(doc, schema, Options{Prevalidate: preval})
}

func TestInsertMarkup(t *testing.T) {
	s := newSession(t, false)
	w, err := s.InsertMarkup("words", "w", document.NewSpan(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if w.Text() != "swa" {
		t.Errorf("text = %q", w.Text())
	}
	if s.Document().Hierarchy("words").Len() != 1 {
		t.Error("element not inserted")
	}
}

func TestInsertCreatesHierarchy(t *testing.T) {
	s := newSession(t, false)
	if _, err := s.InsertMarkup("notes", "note", document.NewSpan(0, 3)); err != nil {
		t.Fatal(err)
	}
	if s.Document().Hierarchy("notes") == nil {
		t.Error("hierarchy not created")
	}
}

func TestPrevalidationVeto(t *testing.T) {
	s := newSession(t, true)
	// "bogus" is not declared in the words DTD.
	if _, err := s.InsertMarkup("words", "bogus", document.NewSpan(0, 3)); err == nil {
		t.Error("undeclared tag should be vetoed")
	}
	// <w> inside <w> is not potentially valid ((#PCDATA) content).
	if _, err := s.InsertMarkup("words", "w", document.NewSpan(0, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertMarkup("words", "w", document.NewSpan(1, 2)); err == nil {
		t.Error("nested w should be vetoed")
	}
	// Unconstrained hierarchy is never vetoed.
	if _, err := s.InsertMarkup("freeform", "anything", document.NewSpan(0, 5)); err != nil {
		t.Errorf("unconstrained insert rejected: %v", err)
	}
	// A structural conflict is always rejected.
	if _, err := s.InsertMarkup("words", "w", document.NewSpan(4, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertMarkup("words", "sentence", document.NewSpan(2, 6)); err == nil {
		t.Error("overlap within hierarchy should be rejected")
	}
}

func TestPrevalidationOffByDefaultOption(t *testing.T) {
	s := newSession(t, false)
	// Without prevalidation, undeclared tags are allowed (classic editor).
	if _, err := s.InsertMarkup("words", "bogus", document.NewSpan(0, 3)); err != nil {
		t.Errorf("insert rejected without prevalidation: %v", err)
	}
}

func TestUndoRedo(t *testing.T) {
	s := newSession(t, false)
	if s.CanUndo() || s.CanRedo() {
		t.Error("fresh session should have no history")
	}
	if err := s.Undo(); err == nil {
		t.Error("undo on empty history should error")
	}
	if err := s.Redo(); err == nil {
		t.Error("redo on empty history should error")
	}
	s.InsertMarkup("words", "w", document.NewSpan(0, 3))
	s.InsertMarkup("words", "w", document.NewSpan(4, 9))
	if n := s.Document().Hierarchy("words").Len(); n != 2 {
		t.Fatalf("len = %d", n)
	}
	if err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if n := s.Document().Hierarchy("words").Len(); n != 1 {
		t.Errorf("after undo: %d", n)
	}
	if err := s.Redo(); err != nil {
		t.Fatal(err)
	}
	if n := s.Document().Hierarchy("words").Len(); n != 2 {
		t.Errorf("after redo: %d", n)
	}
	// A new edit clears the redo stack.
	s.Undo()
	s.InsertMarkup("words", "w", document.NewSpan(10, 13))
	if s.CanRedo() {
		t.Error("redo should be cleared by a new edit")
	}
}

func TestUndoRestoresExactState(t *testing.T) {
	s := newSession(t, false)
	s.InsertMarkup("words", "w", document.NewSpan(0, 3))
	before := goddag.Dump(s.Document())
	s.InsertMarkup("physical", "line", document.NewSpan(0, 13))
	s.Undo()
	after := goddag.Dump(s.Document())
	if before != after {
		t.Errorf("undo did not restore state:\n%s\nvs\n%s", before, after)
	}
}

func TestFailedInsertLeavesNoHistory(t *testing.T) {
	s := newSession(t, false)
	s.InsertMarkup("words", "w", document.NewSpan(0, 3))
	undoDepth := len(s.undo)
	// Structural conflict (overlap in same hierarchy) fails at apply time.
	s.InsertMarkup("words", "w", document.NewSpan(4, 9))
	if _, err := s.InsertMarkup("words", "x", document.NewSpan(2, 6)); err == nil {
		t.Fatal("expected conflict")
	}
	if len(s.undo) != undoDepth+1 {
		t.Errorf("failed insert should not leave a checkpoint: %d vs %d", len(s.undo), undoDepth+1)
	}
}

func TestRemoveMarkup(t *testing.T) {
	s := newSession(t, false)
	w, _ := s.InsertMarkup("words", "w", document.NewSpan(0, 3))
	if err := s.RemoveMarkup(w); err != nil {
		t.Fatal(err)
	}
	if s.Document().Hierarchy("words").Len() != 0 {
		t.Error("not removed")
	}
	s.Undo()
	if s.Document().Hierarchy("words").Len() != 1 {
		t.Error("undo of remove failed")
	}
	if err := s.RemoveMarkup(nil); err == nil {
		t.Error("nil element should error")
	}
}

func TestSetAttr(t *testing.T) {
	s := newSession(t, false)
	w, _ := s.InsertMarkup("words", "w", document.NewSpan(0, 3))
	if err := s.SetAttr(w, "lemma", "swa"); err != nil {
		t.Fatal(err)
	}
	if v, _ := w.Attr("lemma"); v != "swa" {
		t.Errorf("lemma = %q", v)
	}
	// Enum validation.
	if err := s.SetAttr(w, "kind", "adverb"); err == nil {
		t.Error("bad enum value should be rejected")
	}
	if err := s.SetAttr(w, "kind", "noun"); err != nil {
		t.Errorf("good enum rejected: %v", err)
	}
	if err := s.SetAttr(nil, "x", "y"); err == nil {
		t.Error("nil element should error")
	}
}

func TestRemoveAttr(t *testing.T) {
	s := newSession(t, false)
	w, _ := s.InsertMarkup("words", "w", document.NewSpan(0, 3), goddag.Attr{Name: "lemma", Value: "swa"})
	if err := s.RemoveAttr(w, "lemma"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveAttr(w, "zzz"); err == nil {
		t.Error("missing attribute should error")
	}
	if err := s.RemoveAttr(nil, "x"); err == nil {
		t.Error("nil element should error")
	}
}

func TestTextEditing(t *testing.T) {
	s := newSession(t, false)
	w, _ := s.InsertMarkup("words", "w", document.NewSpan(0, 3)) // "swa"
	if err := s.InsertText(3, "n"); err != nil {
		t.Fatal(err)
	}
	if w2 := s.Document().Hierarchy("words").Elements()[0]; w2.Text() != "swan" {
		t.Errorf("after insert: %q", w2.Text())
	}
	_ = w
	if err := s.DeleteText(document.NewSpan(0, 2)); err != nil {
		t.Fatal(err)
	}
	if w2 := s.Document().Hierarchy("words").Elements()[0]; w2.Text() != "an" {
		t.Errorf("after delete: %q", w2.Text())
	}
	s.Undo()
	s.Undo()
	if got := s.Document().Content().String(); got != "swa hwaet swa he us saegde" {
		t.Errorf("undo text edits: %q", got)
	}
	if err := s.InsertText(999, "x"); err == nil {
		t.Error("out of range insert should error")
	}
	if err := s.DeleteText(document.NewSpan(0, 999)); err == nil {
		t.Error("out of range delete should error")
	}
}

func TestChangeNotifications(t *testing.T) {
	s := newSession(t, false)
	var kinds []ChangeKind
	s.OnChange(func(c Change) { kinds = append(kinds, c.Kind) })
	w, _ := s.InsertMarkup("words", "w", document.NewSpan(0, 3))
	s.SetAttr(w, "lemma", "x")
	s.Undo()
	s.Redo()
	want := []ChangeKind{ChangeInsertMarkup, ChangeSetAttr, ChangeUndo, ChangeRedo}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("kinds[%d] = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestHistoryLimit(t *testing.T) {
	doc := goddag.New("r", strings.Repeat("ab ", 50))
	s := NewSession(doc, nil, Options{HistoryLimit: 3})
	for i := 0; i < 10; i++ {
		if _, err := s.InsertMarkup("h", "w", document.NewSpan(i*3, i*3+2)); err != nil {
			t.Fatal(err)
		}
	}
	undos := 0
	for s.CanUndo() {
		s.Undo()
		undos++
	}
	if undos != 3 {
		t.Errorf("undo depth = %d, want 3", undos)
	}
}

func TestValidateSession(t *testing.T) {
	s := newSession(t, false)
	s.InsertMarkup("physical", "line", document.NewSpan(0, 13))
	// Missing required... line has no attrs declared required; check text
	// at root level in (line+): root has uncovered text -> full invalid.
	viols := s.Validate(validate.Full)
	if len(viols) == 0 {
		t.Error("expected violations (uncovered text under (line+) root)")
	}
	potential := s.Validate(validate.Potential)
	if len(potential) != 0 {
		t.Errorf("potentially valid expected: %v", potential)
	}
}

func TestSelectWord(t *testing.T) {
	s := newSession(t, false)
	sp, err := s.SelectWord(5) // inside "hwaet"
	if err != nil {
		t.Fatal(err)
	}
	if s.Document().Content().Slice(sp) != "hwaet" {
		t.Errorf("word = %q", s.Document().Content().Slice(sp))
	}
	// First word.
	sp, _ = s.SelectWord(0)
	if s.Document().Content().Slice(sp) != "swa" {
		t.Errorf("first word = %q", s.Document().Content().Slice(sp))
	}
	// Last word.
	sp, _ = s.SelectWord(s.Document().Content().Len() - 1)
	if s.Document().Content().Slice(sp) != "saegde" {
		t.Errorf("last word = %q", s.Document().Content().Slice(sp))
	}
	if _, err := s.SelectWord(3); err == nil {
		t.Error("whitespace offset should error")
	}
	if _, err := s.SelectWord(-1); err == nil {
		t.Error("negative offset should error")
	}
}

func TestChangeKindString(t *testing.T) {
	kinds := []ChangeKind{
		ChangeInsertMarkup, ChangeRemoveMarkup, ChangeSetAttr, ChangeRemoveAttr,
		ChangeInsertText, ChangeDeleteText, ChangeUndo, ChangeRedo,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if s := k.String(); s == "" || seen[s] {
			t.Errorf("kind %d name %q", int(k), s)
		} else {
			seen[s] = true
		}
	}
	if !strings.Contains(ChangeKind(42).String(), "42") {
		t.Error("unknown kind")
	}
}

func TestEditWorkflowEndToEnd(t *testing.T) {
	// The demo's xTagger flow: select a word, tag it, prevalidate, undo.
	s := newSession(t, true)
	sp, err := s.SelectWord(0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.InsertMarkup("words", "w", sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetAttr(w, "lemma", "swa"); err != nil {
		t.Fatal(err)
	}
	if viols := s.Validate(validate.Potential); len(viols) != 0 {
		t.Errorf("violations: %v", viols)
	}
	if err := s.Document().Check(); err != nil {
		t.Error(err)
	}
}
