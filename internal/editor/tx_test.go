package editor

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/corpus"
	"repro/internal/document"
	"repro/internal/goddag"
	"repro/internal/validate"
)

func TestTxCommitBatchesOps(t *testing.T) {
	s := newSession(t, false)
	var changes []Change
	s.OnChange(func(c Change) { changes = append(changes, c) })

	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	w, err := tx.InsertMarkup("words", "w", document.NewSpan(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.InsertMarkup("words", "w", document.NewSpan(4, 9)); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetAttr(w, "lemma", "swa"); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Fatalf("notified %d times before commit", len(changes))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Kind != ChangeTransaction {
		t.Fatalf("commit notifications = %v, want one ChangeTransaction", changes)
	}
	if !strings.Contains(changes[0].Detail, "3 ops") {
		t.Fatalf("transaction detail = %q", changes[0].Detail)
	}
	if len(s.undo) != 1 {
		t.Fatalf("undo entries = %d, want 1 for the whole batch", len(s.undo))
	}
	// One undo reverts all three operations.
	if err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if got := s.Document().Hierarchy("words"); got != nil && got.Len() != 0 {
		t.Fatalf("undo left %d elements", got.Len())
	}
	// And redo restores them.
	if err := s.Redo(); err != nil {
		t.Fatal(err)
	}
	if got := s.Document().Hierarchy("words").Len(); got != 2 {
		t.Fatalf("redo restored %d elements, want 2", got)
	}
}

func TestTxAtomicVeto(t *testing.T) {
	s := newSession(t, true)
	if _, err := s.InsertMarkup("words", "w", document.NewSpan(0, 3)); err != nil {
		t.Fatal(err)
	}
	undoDepth := len(s.undo)

	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.InsertMarkup("words", "w", document.NewSpan(4, 9)); err != nil {
		t.Fatal(err)
	}
	// Prevalidation vetoes <w> inside <w>; the op fails and poisons the tx.
	if _, err := tx.InsertMarkup("words", "w", document.NewSpan(1, 2)); err == nil {
		t.Fatal("nested w not vetoed")
	}
	if tx.Err() == nil {
		t.Fatal("transaction not poisoned")
	}
	// Further ops are rejected.
	if _, err := tx.InsertMarkup("words", "w", document.NewSpan(10, 12)); err == nil {
		t.Fatal("op accepted on poisoned transaction")
	}
	// Commit rolls everything back — including the op that succeeded.
	if err := tx.Commit(); err == nil {
		t.Fatal("commit of poisoned transaction did not error")
	}
	if got := s.Document().Hierarchy("words").Len(); got != 1 {
		t.Fatalf("after veto rollback: %d elements, want the pre-tx 1", got)
	}
	if len(s.undo) != undoDepth {
		t.Fatalf("vetoed transaction left history entries: %d vs %d", len(s.undo), undoDepth)
	}
}

func TestTxRollback(t *testing.T) {
	s := newSession(t, false)
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.InsertMarkup("words", "w", document.NewSpan(0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if h := s.Document().Hierarchy("words"); h != nil && h.Len() != 0 {
		t.Fatal("rollback did not restore the document")
	}
	if s.CanUndo() {
		t.Fatal("rollback left an undo entry")
	}
	// The transaction is closed for good.
	if _, err := tx.InsertMarkup("words", "w", document.NewSpan(0, 3)); err == nil {
		t.Fatal("op accepted after rollback")
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit accepted after rollback")
	}
}

func TestTxExcludesDirectEdits(t *testing.T) {
	s := newSession(t, false)
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Begin(); err == nil {
		t.Fatal("second Begin accepted")
	}
	if _, err := s.InsertMarkup("words", "w", document.NewSpan(0, 3)); err == nil {
		t.Fatal("direct edit accepted during transaction")
	}
	if err := s.Undo(); err == nil {
		t.Fatal("undo accepted during transaction")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertMarkup("words", "w", document.NewSpan(0, 3)); err != nil {
		t.Fatalf("direct edit after rollback: %v", err)
	}
}

func TestTxEmptyCommitIsNoOp(t *testing.T) {
	s := newSession(t, false)
	notified := 0
	s.OnChange(func(Change) { notified++ })
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if notified != 0 || s.CanUndo() {
		t.Fatal("empty transaction left history or notifications")
	}
}

// docFingerprint renders the full document state for equivalence checks.
func docFingerprint(d *goddag.Document) string {
	var b strings.Builder
	fmt.Fprintf(&b, "content=%q\n", d.Content().String())
	for _, name := range d.HierarchyNames() {
		fmt.Fprintf(&b, "hier %s:\n", name)
		for _, e := range d.Hierarchy(name).Elements() {
			fmt.Fprintf(&b, "  %s attrs=%v\n", e, e.Attrs())
		}
	}
	return b.String()
}

// TestTxEquivalentToOpSequence drives identical random operation batches
// through (a) one transaction per batch and (b) the equivalent sequence
// of single session operations, over corpus-generated documents, and
// requires identical final documents after every batch. Batches that
// fail mid-way must leave the transactional document exactly at its
// pre-batch state while the single-op document keeps the prefix; the
// test then re-synchronizes by rolling the single-op session back the
// applied prefix.
func TestTxEquivalentToOpSequence(t *testing.T) {
	for _, h := range []int{2, 4} {
		h := h
		t.Run(fmt.Sprintf("h=%d", h), func(t *testing.T) {
			cfg := corpus.DefaultConfig(80)
			cfg.Hierarchies = h
			docA, err := corpus.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			docB, err := corpus.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sa := NewSession(docA, validate.NewSchema(), Options{HistoryLimit: 512})
			sb := NewSession(docB, validate.NewSchema(), Options{HistoryLimit: 512})
			rng := rand.New(rand.NewSource(int64(h)))
			n := docA.Content().Len()
			hiers := docA.HierarchyNames()

			for batch := 0; batch < 15; batch++ {
				before := docFingerprint(sa.Document())
				tx, err := sa.Begin()
				if err != nil {
					t.Fatal(err)
				}
				applied := 0
				var failed bool
				for op := 0; op < 1+rng.Intn(4); op++ {
					hier := hiers[rng.Intn(len(hiers))]
					switch rng.Intn(3) {
					case 0:
						lo := rng.Intn(n)
						sp := document.NewSpan(lo, lo+1+rng.Intn(min(40, n-lo)))
						_, errA := tx.InsertMarkup(hier, "edit", sp)
						if errA != nil {
							failed = true
							break
						}
						if _, errB := sb.InsertMarkup(hier, "edit", sp); errB != nil {
							t.Fatalf("batch %d: single-op diverged: %v", batch, errB)
						}
						applied++
					case 1:
						elsA := sa.Document().Hierarchy(hier).Elements()
						if len(elsA) == 0 {
							continue
						}
						i := rng.Intn(len(elsA))
						if err := tx.RemoveMarkup(elsA[i]); err != nil {
							failed = true
							break
						}
						elsB := sb.Document().Hierarchy(hier).Elements()
						if err := sb.RemoveMarkup(elsB[i]); err != nil {
							t.Fatalf("batch %d: single-op remove diverged: %v", batch, err)
						}
						applied++
					default:
						elsA := sa.Document().Elements()
						if len(elsA) == 0 {
							continue
						}
						i := rng.Intn(len(elsA))
						if err := tx.SetAttr(elsA[i], "b", fmt.Sprint(batch)); err != nil {
							failed = true
							break
						}
						if err := sb.SetAttr(sb.Document().Elements()[i], "b", fmt.Sprint(batch)); err != nil {
							t.Fatalf("batch %d: single-op attr diverged: %v", batch, err)
						}
						applied++
					}
					if failed {
						break
					}
				}
				if failed {
					// Atomic veto: commit returns the poisoning error and
					// restores the pre-batch document; re-sync the single-op
					// session by undoing its applied prefix.
					if err := tx.Commit(); err == nil {
						t.Fatalf("batch %d: poisoned commit succeeded", batch)
					}
					if got := docFingerprint(sa.Document()); got != before {
						t.Fatalf("batch %d: veto did not restore pre-batch state", batch)
					}
					for k := 0; k < applied; k++ {
						if err := sb.Undo(); err != nil {
							t.Fatal(err)
						}
					}
				} else if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				a, b := docFingerprint(sa.Document()), docFingerprint(sb.Document())
				if a != b {
					t.Fatalf("batch %d: transactional and single-op documents diverged:\n%s\nvs\n%s", batch, a, b)
				}
			}
		})
	}
}

// TestSelectWordMultibyte is the property test over the multibyte
// vocabulary: for every byte offset of a corpus-generated document, the
// span SelectWord returns must lie on rune boundaries, cover the
// offset's rune, contain no whitespace, and be maximal (bordered by
// whitespace or the document edge).
func TestSelectWordMultibyte(t *testing.T) {
	cfg := corpus.DefaultConfig(60)
	cfg.Vocabulary = corpus.MultibyteVocabulary
	doc, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(doc, validate.NewSchema(), Options{})
	content := doc.Content()
	text := content.String()
	isSpace := func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == '\r' }
	for pos := 0; pos < len(text); pos++ {
		sp, err := s.SelectWord(pos)
		// Normalize the probe to its rune start, as SelectWord does.
		rs := pos
		for rs > 0 && !utf8.RuneStart(text[rs]) {
			rs--
		}
		r, size := utf8.DecodeRuneInString(text[rs:])
		if isSpace(r) {
			if err == nil {
				t.Fatalf("pos %d: whitespace rune %q selected %v", pos, r, sp)
			}
			continue
		}
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if !content.IsRuneBoundary(sp.Start) || !content.IsRuneBoundary(sp.End) {
			t.Fatalf("pos %d: span %v not on rune boundaries", pos, sp)
		}
		if sp.Start > rs || rs+size > sp.End {
			t.Fatalf("pos %d: span %v does not cover rune at %d", pos, sp, rs)
		}
		word := text[sp.Start:sp.End]
		if word == "" {
			t.Fatalf("pos %d: empty selection", pos)
		}
		for _, wr := range word {
			if isSpace(wr) {
				t.Fatalf("pos %d: selection %q contains whitespace", pos, word)
			}
		}
		// Maximality: the selection is bordered by whitespace or the edge.
		if sp.Start > 0 {
			if br, _ := utf8.DecodeLastRuneInString(text[:sp.Start]); !isSpace(br) {
				t.Fatalf("pos %d: selection %q not left-maximal", pos, word)
			}
		}
		if sp.End < len(text) {
			if ar, _ := utf8.DecodeRuneInString(text[sp.End:]); !isSpace(ar) {
				t.Fatalf("pos %d: selection %q not right-maximal", pos, word)
			}
		}
	}
}
