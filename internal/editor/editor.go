// Package editor implements the document-editing core of xTagger, the
// paper's authoring tool for multihierarchical document-centric XML
// (§4 and reference [4]): select a fragment, choose markup from any of
// the document's hierarchies, and have *prevalidation* veto insertions
// that could never be extended to a valid encoding (reference [5]).
//
// A Session wraps a GODDAG with a concurrent markup schema (one DTD per
// hierarchy), an undo/redo history, and change notifications for
// presentation layers.
//
// Edits can be batched in transactions (Begin/Commit/Rollback): each
// operation is prevalidated as it is issued, but the batch commits — or
// is vetoed — atomically, costs one undo entry and one change
// notification, and snapshots the document only once however many
// operations it carries. The HTTP edit endpoint (internal/server)
// applies each request body as one transaction.
package editor

import (
	"errors"
	"fmt"
	"unicode/utf8"

	"repro/internal/document"
	"repro/internal/dtd"
	"repro/internal/goddag"
	"repro/internal/validate"
)

// History sentinel errors, for errors.Is checks by presentation layers
// (the HTTP server maps them to 409).
var (
	ErrNothingToUndo = errors.New("editor: nothing to undo")
	ErrNothingToRedo = errors.New("editor: nothing to redo")
)

// ChangeKind discriminates edit notifications.
type ChangeKind int

// Change kinds.
const (
	ChangeInsertMarkup ChangeKind = iota
	ChangeRemoveMarkup
	ChangeSetAttr
	ChangeRemoveAttr
	ChangeInsertText
	ChangeDeleteText
	ChangeUndo
	ChangeRedo
	ChangeTransaction
)

// String returns the change kind name.
func (k ChangeKind) String() string {
	switch k {
	case ChangeInsertMarkup:
		return "insert-markup"
	case ChangeRemoveMarkup:
		return "remove-markup"
	case ChangeSetAttr:
		return "set-attr"
	case ChangeRemoveAttr:
		return "remove-attr"
	case ChangeInsertText:
		return "insert-text"
	case ChangeDeleteText:
		return "delete-text"
	case ChangeUndo:
		return "undo"
	case ChangeRedo:
		return "redo"
	case ChangeTransaction:
		return "transaction"
	default:
		return fmt.Sprintf("ChangeKind(%d)", int(k))
	}
}

// Change describes one applied edit.
type Change struct {
	Kind      ChangeKind
	Hierarchy string
	Tag       string
	Span      document.Span
	Detail    string
}

// Options configure a session.
type Options struct {
	// Prevalidate makes every markup insertion pass the potential
	// validity check against the hierarchy's DTD before it is applied
	// (xTagger's signature feature). Insertion into hierarchies without
	// a DTD is always allowed.
	Prevalidate bool
	// HistoryLimit bounds the undo stack (0 means DefaultHistoryLimit).
	HistoryLimit int
}

// DefaultHistoryLimit is the default undo depth.
const DefaultHistoryLimit = 64

// Session is an editing session over a GODDAG document.
type Session struct {
	doc    *goddag.Document
	schema *validate.Schema
	opts   Options

	undo      []*goddag.Document // snapshots before each applied op/transaction
	redo      []*goddag.Document
	listeners []func(Change)
	tx        *Tx // open transaction, nil otherwise
}

// NewSession starts a session. schema may be nil (no validation).
func NewSession(doc *goddag.Document, schema *validate.Schema, opts Options) *Session {
	if opts.HistoryLimit == 0 {
		opts.HistoryLimit = DefaultHistoryLimit
	}
	if schema == nil {
		schema = validate.NewSchema()
	}
	return &Session{doc: doc, schema: schema, opts: opts}
}

// Document returns the live document. Mutating it directly bypasses
// history and prevalidation.
func (s *Session) Document() *goddag.Document { return s.doc }

// HistoryFootprint estimates the heap bytes held by the undo/redo
// snapshot stacks (goddag.Footprint per snapshot). Serving layers add
// it to the live document's footprint when budgeting resident memory —
// an actively edited document holds up to HistoryLimit full snapshots.
func (s *Session) HistoryFootprint() int64 {
	var f int64
	for _, d := range s.undo {
		f += d.Footprint()
	}
	for _, d := range s.redo {
		f += d.Footprint()
	}
	return f
}

// SetPrevalidate toggles the prevalidation veto for subsequent markup
// insertions, in place: history, listeners, and any open transaction
// are unaffected (ops issued after the call see the new setting).
func (s *Session) SetPrevalidate(on bool) { s.opts.Prevalidate = on }

// Prevalidating reports whether insertions are prevalidated.
func (s *Session) Prevalidating() bool { return s.opts.Prevalidate }

// Schema returns the session's concurrent markup schema.
func (s *Session) Schema() *validate.Schema { return s.schema }

// OnChange registers a change listener, called after each applied edit.
func (s *Session) OnChange(f func(Change)) { s.listeners = append(s.listeners, f) }

func (s *Session) notify(c Change) {
	for _, f := range s.listeners {
		f(c)
	}
}

// checkpoint pushes an undo snapshot and clears the redo stack.
func (s *Session) checkpoint() {
	s.undo = append(s.undo, s.doc.Clone())
	if len(s.undo) > s.opts.HistoryLimit {
		s.undo = s.undo[1:]
	}
	s.redo = nil
}

// CanUndo reports whether Undo would succeed.
func (s *Session) CanUndo() bool { return len(s.undo) > 0 && s.tx == nil }

// CanRedo reports whether Redo would succeed.
func (s *Session) CanRedo() bool { return len(s.redo) > 0 && s.tx == nil }

// mutable guards direct session edits and history moves against running
// inside an open transaction.
func (s *Session) mutable() error {
	if s.tx != nil {
		return fmt.Errorf("editor: a transaction is open; commit or roll it back first")
	}
	return nil
}

// Undo reverts the most recent edit or committed transaction.
func (s *Session) Undo() error {
	if err := s.mutable(); err != nil {
		return err
	}
	if len(s.undo) == 0 {
		return ErrNothingToUndo
	}
	s.redo = append(s.redo, s.doc)
	s.doc = s.undo[len(s.undo)-1]
	s.undo = s.undo[:len(s.undo)-1]
	s.notify(Change{Kind: ChangeUndo})
	return nil
}

// Redo re-applies the most recently undone edit.
func (s *Session) Redo() error {
	if err := s.mutable(); err != nil {
		return err
	}
	if len(s.redo) == 0 {
		return ErrNothingToRedo
	}
	s.undo = append(s.undo, s.doc)
	s.doc = s.redo[len(s.redo)-1]
	s.redo = s.redo[:len(s.redo)-1]
	s.notify(Change{Kind: ChangeRedo})
	return nil
}

// applyInsertMarkup is the shared core of InsertMarkup and Tx.InsertMarkup:
// prevalidation plus insertion, without history or notification. Failed
// insertions mutate nothing (InsertElement is atomic on error; a
// just-created empty hierarchy is unwound here).
func (s *Session) applyInsertMarkup(hierarchy, tag string, span document.Span, attrs []goddag.Attr) (*goddag.Element, error) {
	h := s.doc.Hierarchy(hierarchy)
	created := false
	if h == nil {
		h = s.doc.AddHierarchy(hierarchy)
		created = true
	}
	fail := func(err error) (*goddag.Element, error) {
		if created {
			s.doc.RemoveHierarchy(hierarchy)
		}
		return nil, err
	}
	if s.opts.Prevalidate {
		if err := validate.CheckInsertion(s.doc, h, s.schema.DTD(hierarchy), tag, span); err != nil {
			return fail(fmt.Errorf("editor: prevalidation rejected <%s>%v in %s: %w", tag, span, hierarchy, err))
		}
	}
	el, err := s.doc.InsertElement(h, tag, attrs, span)
	if err != nil {
		return fail(err)
	}
	return el, nil
}

// InsertMarkup inserts an element over span into the named hierarchy,
// after prevalidation when enabled. The hierarchy is created on first
// use. It returns the inserted element. Failed insertions leave the
// session exactly as it was.
func (s *Session) InsertMarkup(hierarchy, tag string, span document.Span, attrs ...goddag.Attr) (*goddag.Element, error) {
	if err := s.mutable(); err != nil {
		return nil, err
	}
	s.checkpoint()
	el, err := s.applyInsertMarkup(hierarchy, tag, span, attrs)
	if err != nil {
		s.undo = s.undo[:len(s.undo)-1]
		return nil, err
	}
	s.notify(Change{Kind: ChangeInsertMarkup, Hierarchy: hierarchy, Tag: tag, Span: span})
	return el, nil
}

// applyRemoveMarkup is the shared core of RemoveMarkup and Tx.RemoveMarkup.
func (s *Session) applyRemoveMarkup(el *goddag.Element) (Change, error) {
	if el == nil {
		return Change{}, fmt.Errorf("editor: nil element")
	}
	c := Change{Kind: ChangeRemoveMarkup, Hierarchy: el.Hierarchy().Name(), Tag: el.Name(), Span: el.Span()}
	if err := s.doc.RemoveElement(el); err != nil {
		return Change{}, err
	}
	return c, nil
}

// RemoveMarkup deletes an element; its children are adopted by its
// parent.
func (s *Session) RemoveMarkup(el *goddag.Element) error {
	if err := s.mutable(); err != nil {
		return err
	}
	s.checkpoint()
	c, err := s.applyRemoveMarkup(el)
	if err != nil {
		s.undo = s.undo[:len(s.undo)-1]
		return err
	}
	s.notify(c)
	return nil
}

// applySetAttr is the shared core of SetAttr and Tx.SetAttr: DTD
// attribute validation plus the edit.
func (s *Session) applySetAttr(el *goddag.Element, name, value string) error {
	if el == nil {
		return fmt.Errorf("editor: nil element")
	}
	if d := s.schema.DTD(el.Hierarchy().Name()); d != nil {
		if decl := d.Element(el.Name()); decl != nil {
			if def := decl.AttDef(name); def != nil {
				if def.Type == "enum" {
					ok := false
					for _, v := range def.Enum {
						if v == value {
							ok = true
							break
						}
					}
					if !ok {
						return fmt.Errorf("editor: %s=%q not in enumeration for <%s>", name, value, el.Name())
					}
				}
				if def.Default == dtd.DefaultFixed && value != def.Value {
					return fmt.Errorf("editor: %s must be fixed %q on <%s>", name, def.Value, el.Name())
				}
			}
		}
	}
	el.SetAttr(name, value)
	return nil
}

// SetAttr sets an attribute, validating enumerated/fixed values against
// the DTD when the session has one for the element's hierarchy.
func (s *Session) SetAttr(el *goddag.Element, name, value string) error {
	if err := s.mutable(); err != nil {
		return err
	}
	s.checkpoint()
	if err := s.applySetAttr(el, name, value); err != nil {
		s.undo = s.undo[:len(s.undo)-1]
		return err
	}
	s.notify(Change{Kind: ChangeSetAttr, Hierarchy: el.Hierarchy().Name(), Tag: el.Name(), Detail: name + "=" + value})
	return nil
}

// applyRemoveAttr is the shared core of RemoveAttr and Tx.RemoveAttr.
func (s *Session) applyRemoveAttr(el *goddag.Element, name string) error {
	if el == nil {
		return fmt.Errorf("editor: nil element")
	}
	if !el.RemoveAttr(name) {
		return fmt.Errorf("editor: no attribute %q on %v", name, el)
	}
	return nil
}

// RemoveAttr deletes an attribute.
func (s *Session) RemoveAttr(el *goddag.Element, name string) error {
	if err := s.mutable(); err != nil {
		return err
	}
	s.checkpoint()
	if err := s.applyRemoveAttr(el, name); err != nil {
		s.undo = s.undo[:len(s.undo)-1]
		return err
	}
	s.notify(Change{Kind: ChangeRemoveAttr, Hierarchy: el.Hierarchy().Name(), Tag: el.Name(), Detail: name})
	return nil
}

// InsertText inserts text at a byte offset, adjusting all markup.
func (s *Session) InsertText(pos int, text string) error {
	if err := s.mutable(); err != nil {
		return err
	}
	s.checkpoint()
	if err := s.doc.InsertText(pos, text); err != nil {
		s.undo = s.undo[:len(s.undo)-1]
		return err
	}
	s.notify(Change{Kind: ChangeInsertText, Span: document.NewSpan(pos, pos+len(text))})
	return nil
}

// DeleteText removes a span of text, adjusting all markup; elements whose
// content is entirely deleted remain as empty milestones.
func (s *Session) DeleteText(span document.Span) error {
	if err := s.mutable(); err != nil {
		return err
	}
	s.checkpoint()
	if err := s.doc.DeleteText(span); err != nil {
		s.undo = s.undo[:len(s.undo)-1]
		return err
	}
	s.notify(Change{Kind: ChangeDeleteText, Span: span})
	return nil
}

// Validate runs the schema over every hierarchy in the given mode.
func (s *Session) Validate(mode validate.Mode) []validate.Violation {
	return validate.Document(s.doc, s.schema, mode)
}

// Tx is an open editing transaction: a batch of markup and attribute
// operations applied to the live document as they are issued (each one
// prevalidated like a direct session edit) but committed — or vetoed —
// atomically. A committed transaction collapses to ONE undo entry and
// ONE change notification however many operations it batched; a failed
// operation poisons the transaction, and Commit (or Rollback) then
// restores the document to its pre-transaction state.
//
// One transaction may be open per session at a time; direct session
// edits and history moves are rejected while it is open. Elements
// obtained before Begin remain valid inside the transaction (operations
// mutate the live document); after a Rollback — or an Undo of the
// committed transaction — the session's document is the restored
// snapshot and previously held elements no longer belong to it.
type Tx struct {
	s        *Session
	snapshot *goddag.Document
	ops      []Change
	err      error
	done     bool
}

// Begin opens a transaction. It fails if one is already open.
func (s *Session) Begin() (*Tx, error) {
	if s.tx != nil {
		return nil, fmt.Errorf("editor: a transaction is already open")
	}
	tx := &Tx{s: s, snapshot: s.doc.Clone()}
	s.tx = tx
	return tx, nil
}

// InTx reports whether the session has an open transaction.
func (s *Session) InTx() bool { return s.tx != nil }

// Err returns the operation error that poisoned the transaction, nil
// while it can still commit.
func (tx *Tx) Err() error { return tx.err }

// Ops returns the operations applied so far, one Change per successful
// operation.
func (tx *Tx) Ops() []Change { return tx.ops }

// guard rejects operations on closed or poisoned transactions.
func (tx *Tx) guard() error {
	if tx.done {
		return fmt.Errorf("editor: transaction already closed")
	}
	if tx.err != nil {
		return fmt.Errorf("editor: transaction aborted: %w", tx.err)
	}
	return nil
}

// fail poisons the transaction with the first operation error.
func (tx *Tx) fail(err error) error {
	tx.err = err
	return err
}

// InsertMarkup inserts an element within the transaction, prevalidated
// like Session.InsertMarkup. A failure poisons the transaction.
func (tx *Tx) InsertMarkup(hierarchy, tag string, span document.Span, attrs ...goddag.Attr) (*goddag.Element, error) {
	if err := tx.guard(); err != nil {
		return nil, err
	}
	el, err := tx.s.applyInsertMarkup(hierarchy, tag, span, attrs)
	if err != nil {
		return nil, tx.fail(err)
	}
	tx.ops = append(tx.ops, Change{Kind: ChangeInsertMarkup, Hierarchy: hierarchy, Tag: tag, Span: span})
	return el, nil
}

// RemoveMarkup deletes an element within the transaction.
func (tx *Tx) RemoveMarkup(el *goddag.Element) error {
	if err := tx.guard(); err != nil {
		return err
	}
	c, err := tx.s.applyRemoveMarkup(el)
	if err != nil {
		return tx.fail(err)
	}
	tx.ops = append(tx.ops, c)
	return nil
}

// SetAttr sets an attribute within the transaction, validated against
// the hierarchy's DTD like Session.SetAttr.
func (tx *Tx) SetAttr(el *goddag.Element, name, value string) error {
	if err := tx.guard(); err != nil {
		return err
	}
	if err := tx.s.applySetAttr(el, name, value); err != nil {
		return tx.fail(err)
	}
	tx.ops = append(tx.ops, Change{Kind: ChangeSetAttr, Hierarchy: el.Hierarchy().Name(), Tag: el.Name(), Detail: name + "=" + value})
	return nil
}

// RemoveAttr deletes an attribute within the transaction.
func (tx *Tx) RemoveAttr(el *goddag.Element, name string) error {
	if err := tx.guard(); err != nil {
		return err
	}
	if err := tx.s.applyRemoveAttr(el, name); err != nil {
		return tx.fail(err)
	}
	tx.ops = append(tx.ops, Change{Kind: ChangeRemoveAttr, Hierarchy: el.Hierarchy().Name(), Tag: el.Name(), Detail: name})
	return nil
}

// InsertText inserts text within the transaction.
func (tx *Tx) InsertText(pos int, text string) error {
	if err := tx.guard(); err != nil {
		return err
	}
	if err := tx.s.doc.InsertText(pos, text); err != nil {
		return tx.fail(err)
	}
	tx.ops = append(tx.ops, Change{Kind: ChangeInsertText, Span: document.NewSpan(pos, pos+len(text))})
	return nil
}

// DeleteText removes a span of text within the transaction.
func (tx *Tx) DeleteText(span document.Span) error {
	if err := tx.guard(); err != nil {
		return err
	}
	if err := tx.s.doc.DeleteText(span); err != nil {
		return tx.fail(err)
	}
	tx.ops = append(tx.ops, Change{Kind: ChangeDeleteText, Span: span})
	return nil
}

// Commit closes the transaction. A clean transaction with at least one
// operation pushes one undo entry (the pre-transaction snapshot), clears
// the redo stack, and emits one ChangeTransaction notification. A
// poisoned transaction rolls the document back to the snapshot and
// returns the poisoning error. An empty transaction is a no-op.
func (tx *Tx) Commit() error {
	if tx.done {
		return fmt.Errorf("editor: transaction already closed")
	}
	tx.done = true
	s := tx.s
	s.tx = nil
	if tx.err != nil {
		s.doc = tx.snapshot
		return fmt.Errorf("editor: transaction rolled back: %w", tx.err)
	}
	if len(tx.ops) == 0 {
		return nil
	}
	s.undo = append(s.undo, tx.snapshot)
	if len(s.undo) > s.opts.HistoryLimit {
		s.undo = s.undo[1:]
	}
	s.redo = nil
	s.notify(Change{Kind: ChangeTransaction, Detail: fmt.Sprintf("%d ops", len(tx.ops))})
	return nil
}

// Rollback closes the transaction and restores the document to its
// pre-transaction state, whether or not any operation failed.
func (tx *Tx) Rollback() error {
	if tx.done {
		return fmt.Errorf("editor: transaction already closed")
	}
	tx.done = true
	tx.s.tx = nil
	tx.s.doc = tx.snapshot
	return nil
}

// SelectWord returns the byte span of the whitespace-delimited word
// containing byte offset pos — the editor's double-click selection. An
// offset pointing into the middle of a multibyte rune selects the word
// containing that rune.
func (s *Session) SelectWord(pos int) (document.Span, error) {
	c := s.doc.Content()
	if pos < 0 || pos >= c.Len() {
		return document.Span{}, fmt.Errorf("editor: offset %d out of range [0,%d)", pos, c.Len())
	}
	text := c.String()
	for pos > 0 && !utf8.RuneStart(text[pos]) {
		pos--
	}
	isSpace := func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == '\r' }
	if r, _ := utf8.DecodeRuneInString(text[pos:]); isSpace(r) {
		return document.Span{}, fmt.Errorf("editor: offset %d is whitespace", pos)
	}
	lo := pos
	for lo > 0 {
		r, size := utf8.DecodeLastRuneInString(text[:lo])
		if isSpace(r) {
			break
		}
		lo -= size
	}
	hi := pos
	for hi < len(text) {
		r, size := utf8.DecodeRuneInString(text[hi:])
		if isSpace(r) {
			break
		}
		hi += size
	}
	return document.NewSpan(lo, hi), nil
}
