// Package editor implements the document-editing core of xTagger, the
// paper's authoring tool for multihierarchical document-centric XML
// (§4 and reference [4]): select a fragment, choose markup from any of
// the document's hierarchies, and have *prevalidation* veto insertions
// that could never be extended to a valid encoding (reference [5]).
//
// A Session wraps a GODDAG with a concurrent markup schema (one DTD per
// hierarchy), an undo/redo history, and change notifications for
// presentation layers.
package editor

import (
	"fmt"
	"unicode/utf8"

	"repro/internal/document"
	"repro/internal/dtd"
	"repro/internal/goddag"
	"repro/internal/validate"
)

// ChangeKind discriminates edit notifications.
type ChangeKind int

// Change kinds.
const (
	ChangeInsertMarkup ChangeKind = iota
	ChangeRemoveMarkup
	ChangeSetAttr
	ChangeRemoveAttr
	ChangeInsertText
	ChangeDeleteText
	ChangeUndo
	ChangeRedo
)

// String returns the change kind name.
func (k ChangeKind) String() string {
	switch k {
	case ChangeInsertMarkup:
		return "insert-markup"
	case ChangeRemoveMarkup:
		return "remove-markup"
	case ChangeSetAttr:
		return "set-attr"
	case ChangeRemoveAttr:
		return "remove-attr"
	case ChangeInsertText:
		return "insert-text"
	case ChangeDeleteText:
		return "delete-text"
	case ChangeUndo:
		return "undo"
	case ChangeRedo:
		return "redo"
	default:
		return fmt.Sprintf("ChangeKind(%d)", int(k))
	}
}

// Change describes one applied edit.
type Change struct {
	Kind      ChangeKind
	Hierarchy string
	Tag       string
	Span      document.Span
	Detail    string
}

// Options configure a session.
type Options struct {
	// Prevalidate makes every markup insertion pass the potential
	// validity check against the hierarchy's DTD before it is applied
	// (xTagger's signature feature). Insertion into hierarchies without
	// a DTD is always allowed.
	Prevalidate bool
	// HistoryLimit bounds the undo stack (0 means DefaultHistoryLimit).
	HistoryLimit int
}

// DefaultHistoryLimit is the default undo depth.
const DefaultHistoryLimit = 64

// Session is an editing session over a GODDAG document.
type Session struct {
	doc    *goddag.Document
	schema *validate.Schema
	opts   Options

	undo      []*goddag.Document // snapshots before each applied op
	redo      []*goddag.Document
	listeners []func(Change)
}

// NewSession starts a session. schema may be nil (no validation).
func NewSession(doc *goddag.Document, schema *validate.Schema, opts Options) *Session {
	if opts.HistoryLimit == 0 {
		opts.HistoryLimit = DefaultHistoryLimit
	}
	if schema == nil {
		schema = validate.NewSchema()
	}
	return &Session{doc: doc, schema: schema, opts: opts}
}

// Document returns the live document. Mutating it directly bypasses
// history and prevalidation.
func (s *Session) Document() *goddag.Document { return s.doc }

// Schema returns the session's concurrent markup schema.
func (s *Session) Schema() *validate.Schema { return s.schema }

// OnChange registers a change listener, called after each applied edit.
func (s *Session) OnChange(f func(Change)) { s.listeners = append(s.listeners, f) }

func (s *Session) notify(c Change) {
	for _, f := range s.listeners {
		f(c)
	}
}

// checkpoint pushes an undo snapshot and clears the redo stack.
func (s *Session) checkpoint() {
	s.undo = append(s.undo, s.doc.Clone())
	if len(s.undo) > s.opts.HistoryLimit {
		s.undo = s.undo[1:]
	}
	s.redo = nil
}

// CanUndo reports whether Undo would succeed.
func (s *Session) CanUndo() bool { return len(s.undo) > 0 }

// CanRedo reports whether Redo would succeed.
func (s *Session) CanRedo() bool { return len(s.redo) > 0 }

// Undo reverts the most recent edit.
func (s *Session) Undo() error {
	if len(s.undo) == 0 {
		return fmt.Errorf("editor: nothing to undo")
	}
	s.redo = append(s.redo, s.doc)
	s.doc = s.undo[len(s.undo)-1]
	s.undo = s.undo[:len(s.undo)-1]
	s.notify(Change{Kind: ChangeUndo})
	return nil
}

// Redo re-applies the most recently undone edit.
func (s *Session) Redo() error {
	if len(s.redo) == 0 {
		return fmt.Errorf("editor: nothing to redo")
	}
	s.undo = append(s.undo, s.doc)
	s.doc = s.redo[len(s.redo)-1]
	s.redo = s.redo[:len(s.redo)-1]
	s.notify(Change{Kind: ChangeRedo})
	return nil
}

// InsertMarkup inserts an element over span into the named hierarchy,
// after prevalidation when enabled. The hierarchy is created on first
// use. It returns the inserted element.
//
// Failed insertions leave the session exactly as it was: InsertElement is
// atomic (it mutates nothing on error), so only the checkpoint and a
// just-created empty hierarchy need unwinding.
func (s *Session) InsertMarkup(hierarchy, tag string, span document.Span, attrs ...goddag.Attr) (*goddag.Element, error) {
	s.checkpoint()
	h := s.doc.Hierarchy(hierarchy)
	created := false
	if h == nil {
		h = s.doc.AddHierarchy(hierarchy)
		created = true
	}
	fail := func(err error) (*goddag.Element, error) {
		if created {
			s.doc.RemoveHierarchy(hierarchy)
		}
		s.undo = s.undo[:len(s.undo)-1]
		return nil, err
	}
	if s.opts.Prevalidate {
		if err := validate.CheckInsertion(s.doc, h, s.schema.DTD(hierarchy), tag, span); err != nil {
			return fail(fmt.Errorf("editor: prevalidation rejected <%s>%v in %s: %w", tag, span, hierarchy, err))
		}
	}
	el, err := s.doc.InsertElement(h, tag, attrs, span)
	if err != nil {
		return fail(err)
	}
	s.notify(Change{Kind: ChangeInsertMarkup, Hierarchy: hierarchy, Tag: tag, Span: span})
	return el, nil
}

// RemoveMarkup deletes an element; its children are adopted by its
// parent.
func (s *Session) RemoveMarkup(el *goddag.Element) error {
	if el == nil {
		return fmt.Errorf("editor: nil element")
	}
	hier, tag, span := el.Hierarchy().Name(), el.Name(), el.Span()
	s.checkpoint()
	if err := s.doc.RemoveElement(el); err != nil {
		s.undo = s.undo[:len(s.undo)-1]
		return err
	}
	s.notify(Change{Kind: ChangeRemoveMarkup, Hierarchy: hier, Tag: tag, Span: span})
	return nil
}

// SetAttr sets an attribute, validating enumerated/fixed values against
// the DTD when the session has one for the element's hierarchy.
func (s *Session) SetAttr(el *goddag.Element, name, value string) error {
	if el == nil {
		return fmt.Errorf("editor: nil element")
	}
	if d := s.schema.DTD(el.Hierarchy().Name()); d != nil {
		if decl := d.Element(el.Name()); decl != nil {
			if def := decl.AttDef(name); def != nil {
				if def.Type == "enum" {
					ok := false
					for _, v := range def.Enum {
						if v == value {
							ok = true
							break
						}
					}
					if !ok {
						return fmt.Errorf("editor: %s=%q not in enumeration for <%s>", name, value, el.Name())
					}
				}
				if def.Default == dtd.DefaultFixed && value != def.Value {
					return fmt.Errorf("editor: %s must be fixed %q on <%s>", name, def.Value, el.Name())
				}
			}
		}
	}
	s.checkpoint()
	el.SetAttr(name, value)
	s.notify(Change{Kind: ChangeSetAttr, Hierarchy: el.Hierarchy().Name(), Tag: el.Name(), Detail: name + "=" + value})
	return nil
}

// RemoveAttr deletes an attribute.
func (s *Session) RemoveAttr(el *goddag.Element, name string) error {
	if el == nil {
		return fmt.Errorf("editor: nil element")
	}
	s.checkpoint()
	if !el.RemoveAttr(name) {
		s.undo = s.undo[:len(s.undo)-1]
		return fmt.Errorf("editor: no attribute %q on %v", name, el)
	}
	s.notify(Change{Kind: ChangeRemoveAttr, Hierarchy: el.Hierarchy().Name(), Tag: el.Name(), Detail: name})
	return nil
}

// InsertText inserts text at a byte offset, adjusting all markup.
func (s *Session) InsertText(pos int, text string) error {
	s.checkpoint()
	if err := s.doc.InsertText(pos, text); err != nil {
		s.undo = s.undo[:len(s.undo)-1]
		return err
	}
	s.notify(Change{Kind: ChangeInsertText, Span: document.NewSpan(pos, pos+len(text))})
	return nil
}

// DeleteText removes a span of text, adjusting all markup; elements whose
// content is entirely deleted remain as empty milestones.
func (s *Session) DeleteText(span document.Span) error {
	s.checkpoint()
	if err := s.doc.DeleteText(span); err != nil {
		s.undo = s.undo[:len(s.undo)-1]
		return err
	}
	s.notify(Change{Kind: ChangeDeleteText, Span: span})
	return nil
}

// Validate runs the schema over every hierarchy in the given mode.
func (s *Session) Validate(mode validate.Mode) []validate.Violation {
	return validate.Document(s.doc, s.schema, mode)
}

// SelectWord returns the byte span of the whitespace-delimited word
// containing byte offset pos — the editor's double-click selection. An
// offset pointing into the middle of a multibyte rune selects the word
// containing that rune.
func (s *Session) SelectWord(pos int) (document.Span, error) {
	c := s.doc.Content()
	if pos < 0 || pos >= c.Len() {
		return document.Span{}, fmt.Errorf("editor: offset %d out of range [0,%d)", pos, c.Len())
	}
	text := c.String()
	for pos > 0 && !utf8.RuneStart(text[pos]) {
		pos--
	}
	isSpace := func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == '\r' }
	if r, _ := utf8.DecodeRuneInString(text[pos:]); isSpace(r) {
		return document.Span{}, fmt.Errorf("editor: offset %d is whitespace", pos)
	}
	lo := pos
	for lo > 0 {
		r, size := utf8.DecodeLastRuneInString(text[:lo])
		if isSpace(r) {
			break
		}
		lo -= size
	}
	hi := pos
	for hi < len(text) {
		r, size := utf8.DecodeRuneInString(text[hi:])
		if isSpace(r) {
			break
		}
		hi += size
	}
	return document.NewSpan(lo, hi), nil
}
