package editor

import (
	"encoding/json"
	"errors"
	"testing"
)

func TestApplyBatchCommits(t *testing.T) {
	s := newSession(t, false)
	// The wire bytes an HTTP edit (or a WAL record) would carry.
	raw := []byte(`{"ops":[
		{"op":"insert-markup","hierarchy":"words","tag":"w","start":0,"end":3,"attrs":{"lemma":"swa","kind":"noun"}},
		{"op":"insert-markup","hierarchy":"words","tag":"w","start":4,"end":9},
		{"op":"set-attr","hierarchy":"words","index":1,"name":"lemma","value":"hwaet"},
		{"op":"remove-attr","hierarchy":"words","index":0,"name":"kind"}
	]}`)
	var b Batch
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyBatch(b.Ops); err != nil {
		t.Fatal(err)
	}
	h := s.Document().Hierarchy("words")
	if h.Len() != 2 {
		t.Fatalf("words has %d elements, want 2", h.Len())
	}
	first, _ := h.ElementAt(0)
	if v, ok := first.Attr("lemma"); !ok || v != "swa" {
		t.Errorf("element 0 lemma = %q, %v", v, ok)
	}
	if _, ok := first.Attr("kind"); ok {
		t.Error("remove-attr did not apply")
	}
	second, _ := h.ElementAt(1)
	if v, _ := second.Attr("lemma"); v != "hwaet" {
		t.Errorf("element 1 lemma = %q", v)
	}
	// One transaction: one undo entry restores the pre-batch state.
	if err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if h := s.Document().Hierarchy("words"); h != nil && h.Len() != 0 {
		t.Error("undo did not restore the pre-batch state")
	}
}

func TestApplyBatchVetoIsAtomic(t *testing.T) {
	s := newSession(t, false)
	err := s.ApplyBatch([]Op{
		{Op: "insert-markup", Hierarchy: "words", Tag: "w", Start: 0, End: 3},
		{Op: "set-attr", Hierarchy: "words", Index: 99, Name: "lemma", Value: "x"},
	})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *BatchError, got %v", err)
	}
	if be.Index != 1 || be.Op != "set-attr" {
		t.Fatalf("BatchError = %+v", be)
	}
	if h := s.Document().Hierarchy("words"); h != nil && h.Len() != 0 {
		t.Error("vetoed batch left partial state")
	}
	if s.CanUndo() {
		t.Error("vetoed batch left an undo entry")
	}
}

func TestApplyOpUnknownAndMissingFields(t *testing.T) {
	s := newSession(t, false)
	for _, ops := range [][]Op{
		{{Op: "explode"}},
		{{Op: "insert-markup", Tag: "w"}},
		{{Op: "remove-markup", Hierarchy: "nope", Index: 0}},
		{{Op: "set-attr", Hierarchy: "words", Index: 0}},
	} {
		if err := s.ApplyBatch(ops); err == nil {
			t.Errorf("ops %+v: want error", ops)
		}
	}
}
