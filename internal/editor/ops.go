package editor

import (
	"fmt"
	"sort"

	"repro/internal/document"
	"repro/internal/goddag"
)

// Op is one wire-format edit operation: the JSON shape POST
// /docs/{id}/edit accepts, and — verbatim — the op-batch payload the
// catalog's write-ahead log records for crash recovery and (per
// ROADMAP) future replica streaming. Op selects the shape:
// "insert-markup" (hierarchy, tag, start, end, attrs), "remove-markup"
// (hierarchy, index), "set-attr" (hierarchy, index, name, value),
// "remove-attr" (hierarchy, index, name). Start/end are byte offsets
// into the shared content; index addresses the hierarchy's elements in
// document order at the time the op applies (earlier ops in a batch
// shift later indices).
type Op struct {
	Op        string            `json:"op"`
	Hierarchy string            `json:"hierarchy"`
	Tag       string            `json:"tag,omitempty"`
	Start     int               `json:"start,omitempty"`
	End       int               `json:"end,omitempty"`
	Index     int               `json:"index,omitempty"`
	Name      string            `json:"name,omitempty"`
	Value     string            `json:"value,omitempty"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

// Batch is a serializable op batch: the /docs/{id}/edit request body
// and the payload of one WAL op record.
type Batch struct {
	Ops []Op `json:"ops"`
}

// BatchError reports the operation that vetoed an ApplyBatch: Index is
// the failing op's position in the batch, Err the veto (a
// validate.Violation, *goddag.ConflictError, or addressing error —
// inspect with errors.As).
type BatchError struct {
	Index int
	Op    string
	Err   error
}

// Error implements the error interface.
func (e *BatchError) Error() string { return fmt.Sprintf("op %d (%s): %v", e.Index, e.Op, e.Err) }

// Unwrap exposes the vetoing error.
func (e *BatchError) Unwrap() error { return e.Err }

// ApplyBatch applies a wire-format op batch as one transaction: every
// op is prevalidated against the mid-batch state, the first failure
// vetoes the whole batch (returned as a *BatchError, with the document
// rolled back), and a clean batch commits atomically — one undo entry,
// one change notification. Applying the same bytes to the same
// pre-state is deterministic, which is what makes the batch replayable
// from the write-ahead log.
func (s *Session) ApplyBatch(ops []Op) error {
	tx, err := s.Begin()
	if err != nil {
		return err
	}
	for i, op := range ops {
		if err := tx.ApplyOp(op); err != nil {
			tx.Rollback()
			return &BatchError{Index: i, Op: op.Op, Err: err}
		}
	}
	return tx.Commit()
}

// ApplyOp translates one wire op into the corresponding transaction
// operation. Attribute maps are applied in sorted name order, so a
// batch's effect is independent of JSON map iteration.
func (tx *Tx) ApplyOp(op Op) error {
	switch op.Op {
	case "insert-markup":
		if op.Hierarchy == "" || op.Tag == "" {
			return fmt.Errorf("insert-markup needs hierarchy and tag")
		}
		attrs := make([]goddag.Attr, 0, len(op.Attrs))
		for name, value := range op.Attrs {
			attrs = append(attrs, goddag.Attr{Name: name, Value: value})
		}
		sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
		_, err := tx.InsertMarkup(op.Hierarchy, op.Tag, document.NewSpan(op.Start, op.End), attrs...)
		return err
	case "remove-markup":
		el, err := tx.resolveElement(op)
		if err != nil {
			return err
		}
		return tx.RemoveMarkup(el)
	case "set-attr":
		el, err := tx.resolveElement(op)
		if err != nil {
			return err
		}
		if op.Name == "" {
			return fmt.Errorf("set-attr needs an attribute name")
		}
		return tx.SetAttr(el, op.Name, op.Value)
	case "remove-attr":
		el, err := tx.resolveElement(op)
		if err != nil {
			return err
		}
		if op.Name == "" {
			return fmt.Errorf("remove-attr needs an attribute name")
		}
		return tx.RemoveAttr(el, op.Name)
	default:
		return fmt.Errorf("unknown op %q (insert-markup, remove-markup, set-attr, remove-attr)", op.Op)
	}
}

// resolveElement addresses an element by hierarchy and document-order
// index against the current (mid-transaction) document state.
func (tx *Tx) resolveElement(op Op) (*goddag.Element, error) {
	if op.Hierarchy == "" {
		return nil, fmt.Errorf("%s needs a hierarchy", op.Op)
	}
	h := tx.s.doc.Hierarchy(op.Hierarchy)
	if h == nil {
		return nil, fmt.Errorf("unknown hierarchy %q", op.Hierarchy)
	}
	el, ok := h.ElementAt(op.Index)
	if !ok {
		return nil, fmt.Errorf("element index %d out of range [0,%d) in hierarchy %q", op.Index, h.Len(), op.Hierarchy)
	}
	return el, nil
}
