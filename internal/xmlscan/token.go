// Package xmlscan implements a small, strict XML 1.0 tokenizer that
// preserves byte offsets and content (text) offsets for every token.
//
// The standard library's encoding/xml decoder is designed for data-centric
// XML: it does not report the *content offset* of markup (the amount of
// text preceding a tag), which is the primitive that concurrent-XML
// parsing (package sacx) and standoff/milestone drivers (package drivers)
// are built on. This scanner reports, for every token, both its byte span
// in the input and its byte offset within the document's *decoded*
// character content (Token.ContentByte). Content offsets are bytes, not
// runes — the scanner never counts runes, keeping the hot path free of
// UTF-8 decoding; consumers that need character positions convert at the
// edge via the document package's byte↔rune index.
//
// The scanner checks well-formedness as it goes: tag balance, attribute
// uniqueness, name syntax, and entity correctness. It understands the
// predefined entities, character references, and ENTITY declarations from
// the DOCTYPE internal subset.
package xmlscan

import "fmt"

// Kind identifies the kind of a Token.
type Kind int

// Token kinds reported by the Scanner.
const (
	KindInvalid Kind = iota
	// KindStartElement is a start tag <name ...> or self-closing tag
	// <name .../> (see Token.SelfClosing).
	KindStartElement
	// KindEndElement is an end tag </name>.
	KindEndElement
	// KindText is a run of character data between markup. Entity and
	// character references are decoded in Token.Text.
	KindText
	// KindCDATA is a <![CDATA[...]]> section. Token.Text holds the
	// literal contents.
	KindCDATA
	// KindComment is a <!-- ... --> comment. Token.Text holds the body.
	KindComment
	// KindProcInst is a processing instruction <?target data?>.
	// Token.Name is the target and Token.Text the data.
	KindProcInst
	// KindDoctype is a <!DOCTYPE ...> declaration. Token.Name is the
	// document type name and Token.Text the raw declaration body.
	KindDoctype
	// KindXMLDecl is the <?xml version="1.0" ...?> declaration.
	KindXMLDecl
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindStartElement:
		return "StartElement"
	case KindEndElement:
		return "EndElement"
	case KindText:
		return "Text"
	case KindCDATA:
		return "CDATA"
	case KindComment:
		return "Comment"
	case KindProcInst:
		return "ProcInst"
	case KindDoctype:
		return "Doctype"
	case KindXMLDecl:
		return "XMLDecl"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attr is a single attribute on a start tag. Value has entity and
// character references decoded.
type Attr struct {
	Name  string
	Value string
}

// Token is a single lexical item of an XML document.
type Token struct {
	Kind Kind

	// Name is the element name (start/end tags), PI target, or DOCTYPE name.
	Name string

	// Attrs are the attributes of a start tag, in document order.
	Attrs []Attr

	// Text is the decoded character data (Text), literal CDATA body,
	// comment body, PI data, or raw DOCTYPE body.
	Text string

	// SelfClosing reports whether a start element was written <name/>.
	SelfClosing bool

	// Offset and End delimit the raw bytes of the token in the input:
	// input[Offset:End].
	Offset int
	End    int

	// ContentByte is the byte offset of this token within the document's
	// *decoded* character content: the number of content bytes (from Text
	// and CDATA tokens, with entity and character references counted at
	// their replacement length) that precede it. For a Text or CDATA
	// token this is the content offset of its first byte. It lets
	// consumers slice a shared content string directly; decoded content
	// always begins tokens on rune boundaries, so the offset converts
	// losslessly to a character position when one is needed.
	ContentByte int

	// Depth is the element nesting depth at the token start (the root
	// start tag has depth 0).
	Depth int
}

// Attr returns the value of the named attribute and whether it is present.
func (t *Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SyntaxError describes a well-formedness violation found while scanning.
type SyntaxError struct {
	Offset int    // byte offset of the error
	Line   int    // 1-based line
	Col    int    // 1-based column
	Msg    string // description
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xml: %d:%d: %s", e.Line, e.Col, e.Msg)
}
