package xmlscan

import (
	"io"
	"testing"
	"unicode/utf8"
)

// fuzzSeeds cover the scanner's surface: plain markup, attributes in both
// quote styles, self-closing tags, every reference form, CDATA, comments,
// PIs, DOCTYPE with an internal subset, multibyte and astral-plane text,
// and a collection of malformed fragments (truncations, stray markup,
// bad references) that must error rather than loop or crash.
var fuzzSeeds = []string{
	`<r>ab<w>cd</w>e</r>`,
	`<r a="1" b='2'><w c="x&amp;y"/></r>`,
	`<r>a&amp;b&lt;c&#65;&#x42;]x&gt;["']tail&amp;&amp;</r>`,
	`<r>ab<![CDATA[<&]]>cd<w/></r>`,
	`<r><!-- comment --><?pi data?>x</r>`,
	`<!DOCTYPE r [<!ENTITY e "ee">]><r>&e;</r>`,
	`<?xml version="1.0"?><r/>`,
	`<r>文書の🌲📚🔥𝔾𝕠 åb̈ æðel</r>`,
	`<r><line n="1">swa hwæt swa</line><line n="2"> he us sægde</line></r>`,
	`<r>swa hwæt s<res resp="ed">wa he u</res>s sægde</r>`,
	`<r><s>ab cd</s> <s>ef gh</s></r>`,
	`<r>ab<pb/> <x>cd ef</x> gh</r>`,
	// Malformed: truncations and well-formedness violations.
	`<r>ab`,
	`<r><w>x</r></w>`,
	`<r>&undefined;</r>`,
	`<r>&#xZZ;</r>`,
	`<r>a]]>b</r>`,
	`<r a="1" a="2"/>`,
	`<r><w a=1></w></r>`,
	`<r></r><r></r>`,
	`text outside`,
	`<`,
	`<!DOCTYPE`,
	`<r><![CDATA[unterminated</r>`,
	`<r><!-- unterminated</r>`,
}

// FuzzScanner drives the tokenizer over arbitrary bytes and checks its
// hard guarantees: it terminates, errors are *SyntaxError with in-range
// offsets and consistent lazily computed line/col, forward progress is
// monotone, and on success the decoded content offsets add up.
func FuzzScanner(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, opts := range []Options{
			{CoalesceCDATA: true, ReuseAttrs: true},
			{KeepComments: true, KeepProcInsts: true},
		} {
			sc := New(data, opts)
			validInput := utf8.Valid(data)
			contentBytes := 0
			tokens := 0
			lastEnd := 0
			for {
				tok, err := sc.Next()
				if err == io.EOF {
					if sc.ContentByte() != contentBytes {
						t.Fatalf("final ContentByte %d, summed %d", sc.ContentByte(), contentBytes)
					}
					break
				}
				if err != nil {
					se, ok := err.(*SyntaxError)
					if !ok {
						t.Fatalf("error is %T, want *SyntaxError: %v", err, err)
					}
					if se.Offset < 0 || se.Offset > len(data) {
						t.Fatalf("error offset %d out of range [0,%d]", se.Offset, len(data))
					}
					if line, col := sc.Position(se.Offset); line != se.Line || col != se.Col {
						t.Fatalf("error at %d:%d but Position says %d:%d", se.Line, se.Col, line, col)
					}
					// Errors must be sticky.
					if _, err2 := sc.Next(); err2 != err {
						t.Fatalf("error not sticky: %v then %v", err, err2)
					}
					break
				}
				tokens++
				if tokens > 2*len(data)+16 {
					t.Fatalf("scanner emitted %d tokens from %d input bytes", tokens, len(data))
				}
				if tok.Offset < lastEnd || tok.End < tok.Offset || tok.End > len(data) {
					t.Fatalf("token span [%d,%d) regressed past %d (input %d bytes)",
						tok.Offset, tok.End, lastEnd, len(data))
				}
				lastEnd = tok.End
				if tok.ContentByte != contentBytes {
					t.Fatalf("token ContentByte %d, want %d", tok.ContentByte, contentBytes)
				}
				if tok.Kind == KindText || tok.Kind == KindCDATA {
					contentBytes += len(tok.Text)
					if validInput && !utf8.ValidString(tok.Text) {
						t.Fatalf("invalid UTF-8 text from valid input: %q", tok.Text)
					}
				}
			}
		}
	})
}
