package xmlscan

import (
	"io"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func mustTokens(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Tokens([]byte(src), Options{})
	if err != nil {
		t.Fatalf("Tokens(%q): %v", src, err)
	}
	return toks
}

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestSimpleDocument(t *testing.T) {
	toks := mustTokens(t, `<r>hello</r>`)
	want := []Kind{KindStartElement, KindText, KindEndElement}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v tokens, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if toks[1].Text != "hello" {
		t.Errorf("text: got %q, want %q", toks[1].Text, "hello")
	}
}

func TestAttributes(t *testing.T) {
	toks := mustTokens(t, `<r a="1" b='two' c="a&amp;b"/>`)
	st := toks[0]
	if !st.SelfClosing {
		t.Error("expected self-closing")
	}
	cases := []struct{ name, want string }{{"a", "1"}, {"b", "two"}, {"c", "a&b"}}
	for _, c := range cases {
		got, ok := st.Attr(c.name)
		if !ok || got != c.want {
			t.Errorf("attr %s: got %q ok=%v, want %q", c.name, got, ok, c.want)
		}
	}
	if _, ok := st.Attr("zzz"); ok {
		t.Error("Attr(zzz) should be absent")
	}
}

func TestEntityDecoding(t *testing.T) {
	toks := mustTokens(t, `<r>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</r>`)
	if toks[1].Text != `<>&'"AB` {
		t.Errorf("got %q", toks[1].Text)
	}
}

func TestCustomEntities(t *testing.T) {
	toks, err := Tokens([]byte(`<r>&thorn;</r>`), Options{Entities: map[string]string{"thorn": "þ"}})
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Text != "þ" {
		t.Errorf("got %q", toks[1].Text)
	}
}

func TestDoctypeEntityHarvest(t *testing.T) {
	src := `<!DOCTYPE r [<!ENTITY wynn "ƿ"> <!ENTITY ae "æ">]><r>&wynn;&ae;</r>`
	toks := mustTokens(t, src)
	var text string
	for _, tok := range toks {
		if tok.Kind == KindText {
			text += tok.Text
		}
	}
	if text != "ƿæ" {
		t.Errorf("got %q, want %q", text, "ƿæ")
	}
}

func TestCDATA(t *testing.T) {
	toks := mustTokens(t, `<r>a<![CDATA[<b>&amp;]]>c</r>`)
	var got []string
	for _, tok := range toks {
		if tok.Kind == KindText || tok.Kind == KindCDATA {
			got = append(got, tok.Text)
		}
	}
	want := []string{"a", "<b>&amp;", "c"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestCoalesceCDATA(t *testing.T) {
	toks, err := Tokens([]byte(`<r><![CDATA[x]]></r>`), Options{CoalesceCDATA: true})
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != KindText || toks[1].Text != "x" {
		t.Errorf("got %v %q", toks[1].Kind, toks[1].Text)
	}
}

func TestCommentsSkippedByDefault(t *testing.T) {
	toks := mustTokens(t, `<r><!-- hi -->x</r>`)
	for _, tok := range toks {
		if tok.Kind == KindComment {
			t.Fatal("comment not skipped")
		}
	}
	toks2, err := Tokens([]byte(`<r><!-- hi -->x</r>`), Options{KeepComments: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tok := range toks2 {
		if tok.Kind == KindComment && tok.Text == " hi " {
			found = true
		}
	}
	if !found {
		t.Error("comment not reported with KeepComments")
	}
}

func TestProcInst(t *testing.T) {
	toks, err := Tokens([]byte(`<?xml version="1.0"?><r><?php echo?></r>`), Options{KeepProcInsts: true})
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != KindXMLDecl {
		t.Errorf("first token: %v", toks[0].Kind)
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == KindProcInst && tok.Name == "php" && tok.Text == "echo" {
			found = true
		}
	}
	if !found {
		t.Error("PI not reported")
	}
}

func TestContentByte(t *testing.T) {
	// <r>ab<w>cd</w>e</r> : content = "abcde"
	toks := mustTokens(t, `<r>ab<w>cd</w>e</r>`)
	wantPos := map[string]int{}
	for _, tok := range toks {
		switch {
		case tok.Kind == KindStartElement && tok.Name == "w":
			wantPos["w.start"] = tok.ContentByte
		case tok.Kind == KindEndElement && tok.Name == "w":
			wantPos["w.end"] = tok.ContentByte
		case tok.Kind == KindEndElement && tok.Name == "r":
			wantPos["r.end"] = tok.ContentByte
		}
	}
	if wantPos["w.start"] != 2 {
		t.Errorf("w start content byte = %d, want 2", wantPos["w.start"])
	}
	if wantPos["w.end"] != 4 {
		t.Errorf("w end content byte = %d, want 4", wantPos["w.end"])
	}
	if wantPos["r.end"] != 5 {
		t.Errorf("r end content byte = %d, want 5", wantPos["r.end"])
	}
}

func TestContentByteMultibyte(t *testing.T) {
	// Multibyte runes count at their encoded length (æ, þ, ƿ: 2 bytes).
	toks := mustTokens(t, `<r>æþ<w>ƿ</w></r>`)
	for _, tok := range toks {
		if tok.Kind == KindStartElement && tok.Name == "w" {
			if tok.ContentByte != 4 {
				t.Errorf("w at content byte %d, want 4", tok.ContentByte)
			}
		}
		if tok.Kind == KindEndElement && tok.Name == "r" {
			if tok.ContentByte != 6 {
				t.Errorf("r end at content byte %d, want 6", tok.ContentByte)
			}
		}
	}
}

func TestDepth(t *testing.T) {
	toks := mustTokens(t, `<a><b><c/></b></a>`)
	want := map[string]int{"a": 0, "b": 1, "c": 2}
	for _, tok := range toks {
		if tok.Kind == KindStartElement {
			if tok.Depth != want[tok.Name] {
				t.Errorf("<%s> depth %d, want %d", tok.Name, tok.Depth, want[tok.Name])
			}
		}
	}
}

func TestOffsetsSliceable(t *testing.T) {
	src := `<r a="1">text<w/>more</r>`
	toks := mustTokens(t, src)
	for _, tok := range toks {
		raw := src[tok.Offset:tok.End]
		switch tok.Kind {
		case KindStartElement:
			if !strings.HasPrefix(raw, "<") || !strings.HasSuffix(raw, ">") {
				t.Errorf("start raw %q", raw)
			}
		case KindText:
			if raw != tok.Text {
				t.Errorf("text raw %q != %q", raw, tok.Text)
			}
		}
	}
}

func TestLineCol(t *testing.T) {
	src := "<r>\n  <w/>\n</r>"
	s := New([]byte(src), Options{})
	for {
		tok, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == KindStartElement && tok.Name == "w" {
			if line, col := s.Position(tok.Offset); line != 2 || col != 3 {
				t.Errorf("<w> at %d:%d, want 2:3", line, col)
			}
		}
	}
}

func TestWellFormednessErrors(t *testing.T) {
	bad := []struct {
		src, wantSub string
	}{
		{`<r>`, "unclosed"},
		{`<r></s>`, "does not match"},
		{`</r>`, "unexpected end tag"},
		{`<r/><r/>`, "after root"},
		{`<r></r><r></r>`, "after root"},
		{`<r></r><s/>`, "after root"},
		{`<r a="1" a="2"/>`, "duplicate attribute"},
		{`<r a=1/>`, "quoted"},
		{`<r a="x/>`, "unterminated attribute"},
		{`<r>&unknown;</r>`, "undefined entity"},
		{`<r>&#xZZ;</r>`, "invalid character reference"},
		{`<r>]]></r>`, "']]>'"},
		{`<r><!-- a -- b --></r>`, "--"},
		{`hello`, "root"},
		{`<r>x</r>trailing`, "outside root"},
		{``, "no root"},
		{`<1bad/>`, "expected name"},
		{`</`, "expected name"},
		{`<?`, "expected name"},
		{`<!DOCTYPE `, "expected name"},
		{`<r></`, "expected name"},
		{`<r b="<"/>`, "'<' not allowed"},
		{`<r>&#0;</r>`, "invalid character reference"},
	}
	for _, c := range bad {
		_, err := Tokens([]byte(c.src), Options{})
		if err == nil {
			t.Errorf("Tokens(%q): expected error containing %q, got nil", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Tokens(%q): error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestErrorIsSticky(t *testing.T) {
	s := New([]byte(`<r></s>`), Options{})
	var firstErr error
	for {
		_, err := s.Next()
		if err != nil {
			firstErr = err
			break
		}
	}
	_, err2 := s.Next()
	if err2 != firstErr {
		t.Errorf("second error %v, want sticky %v", err2, firstErr)
	}
}

func TestSyntaxErrorFields(t *testing.T) {
	_, err := Tokens([]byte("<r>\n<bad</r>"), Options{})
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("got %T, want *SyntaxError", err)
	}
	if se.Line != 2 {
		t.Errorf("line %d, want 2", se.Line)
	}
	if !strings.Contains(se.Error(), "xml:") {
		t.Errorf("Error() = %q", se.Error())
	}
}

func TestContent(t *testing.T) {
	got, err := Content([]byte(`<r>ab<w>c</w><![CDATA[d]]>e</r>`))
	if err != nil {
		t.Fatal(err)
	}
	if got != "abcde" {
		t.Errorf("Content = %q, want %q", got, "abcde")
	}
}

func TestWhitespaceOutsideRoot(t *testing.T) {
	toks := mustTokens(t, "  \n<r>x</r>\n  ")
	// Leading/trailing whitespace produces empty-content text tokens.
	content := ""
	for _, tok := range toks {
		content += tok.Text
	}
	if content != "x" {
		t.Errorf("content %q, want %q", content, "x")
	}
}

func TestEscapeText(t *testing.T) {
	if got := EscapeText(`a<b>&c`); got != "a&lt;b&gt;&amp;c" {
		t.Errorf("EscapeText = %q", got)
	}
}

func TestEscapeAttr(t *testing.T) {
	if got := EscapeAttr("a\"b<c&d\ne"); got != `a&quot;b&lt;c&amp;d&#10;e` {
		t.Errorf("EscapeAttr = %q", got)
	}
}

func TestIsName(t *testing.T) {
	valid := []string{"a", "ab", "a-b", "a.b", "a1", "_x", "ns:tag", "æ"}
	invalid := []string{"", "1a", "-a", ".a", "a b", "a<"}
	for _, s := range valid {
		if !IsName(s) {
			t.Errorf("IsName(%q) = false, want true", s)
		}
	}
	for _, s := range invalid {
		if IsName(s) {
			t.Errorf("IsName(%q) = true, want false", s)
		}
	}
}

// TestRoundTripEscape is a property test: any text survives an
// escape/scan round trip as document content.
func TestRoundTripEscape(t *testing.T) {
	f := func(s string) bool {
		if !utf8.ValidString(s) {
			return true // skip invalid UTF-8 inputs
		}
		for _, r := range s {
			if !isXMLChar(r) || r == '\r' {
				return true // skip non-XML characters; \r is normalized by real parsers
			}
		}
		src := "<r>" + EscapeText(s) + "</r>"
		got, err := Content([]byte(src))
		if err != nil {
			return false
		}
		return got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRoundTripAttr is a property test for attribute escaping.
func TestRoundTripAttr(t *testing.T) {
	f := func(s string) bool {
		if !utf8.ValidString(s) {
			return true
		}
		for _, r := range s {
			if !isXMLChar(r) || r == '\r' {
				return true
			}
		}
		src := `<r a="` + EscapeAttr(s) + `"/>`
		toks, err := Tokens([]byte(src), Options{})
		if err != nil {
			return false
		}
		got, _ := toks[0].Attr("a")
		return got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestScannerState(t *testing.T) {
	s := New([]byte(`<r>ab<w>c</w></r>`), Options{})
	maxDepth := 0
	for {
		_, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if s.Depth() > maxDepth {
			maxDepth = s.Depth()
		}
	}
	if maxDepth != 2 {
		t.Errorf("max depth %d, want 2", maxDepth)
	}
	if s.ContentByte() != 3 {
		t.Errorf("final content byte %d, want 3", s.ContentByte())
	}
}

func TestDeepNesting(t *testing.T) {
	depth := 2000
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	toks := mustTokens(t, b.String())
	if len(toks) != 2*depth+1 {
		t.Errorf("got %d tokens, want %d", len(toks), 2*depth+1)
	}
}

func TestDoctypeToken(t *testing.T) {
	toks := mustTokens(t, `<!DOCTYPE r SYSTEM "r.dtd"><r/>`)
	if toks[0].Kind != KindDoctype || toks[0].Name != "r" {
		t.Errorf("got %v %q", toks[0].Kind, toks[0].Name)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindStartElement: "StartElement",
		KindEndElement:   "EndElement",
		KindText:         "Text",
		KindCDATA:        "CDATA",
		KindComment:      "Comment",
		KindProcInst:     "ProcInst",
		KindDoctype:      "Doctype",
		KindXMLDecl:      "XMLDecl",
		Kind(99):         "Kind(99)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

// ---- zero-copy / lazy-path coverage ------------------------------------

// TestZeroCopyTextAliasesInput checks that reference-free text comes back
// as a substring of the input rather than a copy.
func TestZeroCopyTextAliasesInput(t *testing.T) {
	src := `<r>plain text run</r>`
	toks := mustTokens(t, src)
	text := toks[1]
	if text.Kind != KindText || text.Text != "plain text run" {
		t.Fatalf("unexpected token %+v", text)
	}
	if src[text.Offset:text.End] != text.Text {
		t.Errorf("text %q is not the input slice %q", text.Text, src[text.Offset:text.End])
	}
}

// TestEntityHeavyText exercises the decoded (slow) text path: every run
// mixes plain chunks, named entities, character references, and ']'
// bytes that must be checked against "]]>".
func TestEntityHeavyText(t *testing.T) {
	src := `<r>a&amp;b&lt;c&#65;&#x42;]x&gt;[&quot;&apos;]tail&amp;&amp;</r>`
	toks := mustTokens(t, src)
	want := `a&b<cAB]x>["']tail&&`
	if toks[1].Text != want {
		t.Errorf("decoded text %q, want %q", toks[1].Text, want)
	}
	if toks[2].ContentByte != len(want) {
		t.Errorf("end tag content byte %d, want %d", toks[2].ContentByte, len(want))
	}
}

// TestEntityTextPositions verifies byte content offsets across a mix of
// multi-byte literals and references that decode to multi-byte runes.
func TestEntityTextPositions(t *testing.T) {
	// Content: "æx" + "þy" — æ literal, þ via character reference; both
	// count at their decoded length of 2 bytes.
	toks := mustTokens(t, `<r>æx<w>&#xFE;y</w></r>`)
	for _, tok := range toks {
		if tok.Kind == KindStartElement && tok.Name == "w" {
			if tok.ContentByte != 3 {
				t.Errorf("w content byte %d, want 3 (æ is 2 bytes)", tok.ContentByte)
			}
		}
		if tok.Kind == KindEndElement && tok.Name == "r" {
			if tok.ContentByte != 6 {
				t.Errorf("r end at byte=%d, want 6", tok.ContentByte)
			}
		}
	}
}

// TestCDATACoalescingPositions checks that coalesced CDATA advances
// content offsets exactly like plain text, including raw markup-looking
// bytes inside the section.
func TestCDATACoalescingPositions(t *testing.T) {
	src := `<r>ab<![CDATA[<&]]>cd<w/></r>`
	toks, err := Tokens([]byte(src), Options{CoalesceCDATA: true})
	if err != nil {
		t.Fatal(err)
	}
	var content string
	for _, tok := range toks {
		if tok.Kind == KindText {
			content += tok.Text
		}
		if tok.Kind == KindStartElement && tok.Name == "w" {
			if tok.ContentByte != 6 {
				t.Errorf("w at byte=%d, want 6", tok.ContentByte)
			}
		}
	}
	if content != "ab<&cd" {
		t.Errorf("content %q, want %q", content, "ab<&cd")
	}
}

// TestCRLFInputs checks that carriage returns pass through text untouched
// and that line/col positions treat only '\n' as a line break, exactly as
// the eager implementation did.
func TestCRLFInputs(t *testing.T) {
	src := "<r>\r\nab\r\n<w/>\r\n</r>"
	s := New([]byte(src), Options{})
	var text string
	for {
		tok, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == KindText {
			text += tok.Text
		}
		if tok.Kind == KindStartElement && tok.Name == "w" {
			if line, col := s.Position(tok.Offset); line != 3 || col != 1 {
				t.Errorf("<w> at %d:%d, want 3:1", line, col)
			}
		}
	}
	if text != "\r\nab\r\n\r\n" {
		t.Errorf("text %q: CR bytes must be preserved", text)
	}
}

// TestErrorLineColLazy locks the Line/Col fields of SyntaxErrors produced
// by the lazy computation to the values the eager seed scanner reported.
func TestErrorLineColLazy(t *testing.T) {
	cases := []struct {
		src       string
		line, col int
	}{
		{"<r>\n<bad</r>", 2, 5},  // attr-name error at the stray '<' on line 2
		{"<r>\n  </s>", 2, 3},    // mismatched end tag after indent
		{"<r>a&zz;</r>", 1, 5},   // undefined entity at the '&'
		{"<r>\n\n]]></r>", 3, 1}, // ']]>' in character data
		{"<a><b>\n\n\nx", 4, 2},  // EOF with unclosed elements
		{"<r>x</r>\nmore", 1, 9}, // content outside root, anchored at the run start
	}
	for _, c := range cases {
		_, err := Tokens([]byte(c.src), Options{})
		se, ok := err.(*SyntaxError)
		if !ok {
			t.Errorf("Tokens(%q): got %T (%v), want *SyntaxError", c.src, err, err)
			continue
		}
		if se.Line != c.line || se.Col != c.col {
			t.Errorf("Tokens(%q): error at %d:%d, want %d:%d (%v)", c.src, se.Line, se.Col, c.line, c.col, se)
		}
	}
}

// TestZeroCopyAttrValues checks both attribute paths: clean values alias
// the input, reference-bearing values decode.
func TestZeroCopyAttrValues(t *testing.T) {
	toks := mustTokens(t, `<r plain="abc" quoted='x"y' dec="a&amp;&#66;"/>`)
	st := toks[0]
	for _, c := range []struct{ name, want string }{
		{"plain", "abc"}, {"quoted", `x"y`}, {"dec", "a&B"},
	} {
		if got, ok := st.Attr(c.name); !ok || got != c.want {
			t.Errorf("attr %s = %q,%v want %q", c.name, got, ok, c.want)
		}
	}
}

// TestReuseAttrs checks the opt-in attribute buffer reuse: values are
// correct per token, and the buffer really is reused between tags.
func TestReuseAttrs(t *testing.T) {
	src := `<r><a x="1" y="2"/><b x="3"/><c/></r>`
	s := New([]byte(src), Options{ReuseAttrs: true})
	var prev []Attr
	for {
		tok, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind != KindStartElement {
			continue
		}
		switch tok.Name {
		case "a":
			if v, _ := tok.Attr("y"); v != "2" {
				t.Errorf("a/@y = %q", v)
			}
			prev = tok.Attrs
		case "b":
			if v, _ := tok.Attr("x"); v != "3" {
				t.Errorf("b/@x = %q", v)
			}
			// The buffer is shared: a's attrs were overwritten in place.
			if len(prev) > 0 && prev[0].Value != "3" {
				t.Errorf("expected buffer reuse to overwrite earlier attrs, got %v", prev)
			}
		case "c":
			if tok.Attrs != nil {
				t.Errorf("c should have nil attrs, got %v", tok.Attrs)
			}
		}
	}
}

// TestEscapeFastPathsReturnInput checks that escaping clean strings does
// not copy.
func TestEscapeFastPathsReturnInput(t *testing.T) {
	clean := "just plain text with æ runes"
	if got := EscapeText(clean); got != clean {
		t.Errorf("EscapeText changed clean input: %q", got)
	}
	if got := EscapeAttr(clean); got != clean {
		t.Errorf("EscapeAttr changed clean input: %q", got)
	}
	if n := testing.AllocsPerRun(100, func() { _ = EscapeText(clean); _ = EscapeAttr(clean) }); n != 0 {
		t.Errorf("escaping clean strings allocates %.0f times", n)
	}
}

// TestTokensCopiesReusedAttrs ensures Tokens (which retains every token)
// detaches attribute slices from the shared ReuseAttrs buffer.
func TestTokensCopiesReusedAttrs(t *testing.T) {
	toks, err := Tokens([]byte(`<r><a x="1"/><b y="2"/></r>`), Options{ReuseAttrs: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Kind != KindStartElement {
			continue
		}
		switch tok.Name {
		case "a":
			if v, ok := tok.Attr("x"); !ok || v != "1" {
				t.Errorf("a attrs corrupted: %v", tok.Attrs)
			}
		case "b":
			if v, ok := tok.Attr("y"); !ok || v != "2" {
				t.Errorf("b attrs corrupted: %v", tok.Attrs)
			}
		}
	}
}
