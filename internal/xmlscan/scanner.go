package xmlscan

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"unicode"
	"unicode/utf8"
	"unsafe"
)

// Options configure a Scanner.
type Options struct {
	// Entities maps additional entity names (without & and ;) to their
	// replacement text. The five predefined XML entities are always
	// available. Entities declared in the DOCTYPE internal subset are
	// added automatically.
	Entities map[string]string

	// KeepComments reports comments as tokens instead of skipping them.
	KeepComments bool

	// KeepProcInsts reports processing instructions as tokens instead of
	// skipping them.
	KeepProcInsts bool

	// CoalesceCDATA makes CDATA sections come back as KindText tokens,
	// merged with adjacent character data.
	CoalesceCDATA bool

	// ReuseAttrs makes the scanner reuse one internal buffer for the
	// Attrs of successive start tags instead of allocating a fresh slice
	// per tag. A token's Attrs are then only valid until the next call to
	// Next; consumers that retain tokens (or their Attrs) must copy them
	// first. Streaming consumers that fold attributes into their own
	// structures (package sacx) set this to eliminate one allocation per
	// element.
	ReuseAttrs bool
}

// predefinedEntities are the five entities every XML processor knows.
// They are shared by all scanners; per-scanner entities overlay them.
var predefinedEntities = map[string]string{
	"lt":   "<",
	"gt":   ">",
	"amp":  "&",
	"apos": "'",
	"quot": `"`,
}

// Scanner tokenizes a complete XML document held in memory.
//
// The scanner is zero-copy where the input allows it: names, attribute
// values and text runs that contain no entity or character references
// are returned as strings aliasing the input bytes (no copying, per
// token or whole-input). A string is built only when a reference
// actually needs decoding.
//
// Line/column information is not computed while scanning; it is derived
// on demand (Position) and when constructing a SyntaxError.
//
// The zero value is not usable; call New.
type Scanner struct {
	src []byte
	str string // src as a string; token substrings alias it
	pos int

	contentByte int // byte offset within decoded character content so far
	stack       []string
	opts        Options
	entities    map[string]string // overlay over predefinedEntities; may be nil

	attrBuf []Attr // reused across start tags when opts.ReuseAttrs

	sawRoot    bool // a root element has been seen
	rootClosed bool // ... and closed
	err        error
}

// New returns a Scanner over src. The scanner aliases src — the string
// view behind zero-copy tokens shares src's memory — so the caller must
// not mutate src while the scanner or any of its tokens are in use.
func New(src []byte, opts Options) *Scanner {
	s := &Scanner{src: src, str: unsafe.String(unsafe.SliceData(src), len(src)), opts: opts}
	for k, v := range opts.Entities {
		s.defineEntity(k, v)
	}
	return s
}

// defineEntity registers a custom entity, allocating the overlay map only
// when one is actually defined.
func (s *Scanner) defineEntity(name, value string) {
	if s.entities == nil {
		s.entities = make(map[string]string, 8)
	}
	s.entities[name] = value
}

// lookupEntity resolves an entity name against the overlay and the
// predefined set.
func (s *Scanner) lookupEntity(name string) (string, bool) {
	if v, ok := s.entities[name]; ok {
		return v, true
	}
	v, ok := predefinedEntities[name]
	return v, ok
}

// Depth returns the current element nesting depth.
func (s *Scanner) Depth() int { return len(s.stack) }

// ContentByte returns the byte offset within the decoded character
// content reached so far.
func (s *Scanner) ContentByte() int { return s.contentByte }

// Position returns the 1-based line and column of a byte offset in the
// input. It is computed on demand by scanning for newlines, so it costs
// O(offset); use it for diagnostics, not per token.
func (s *Scanner) Position(off int) (line, col int) { return s.lineColAt(off) }

func (s *Scanner) errorf(off int, format string, args ...any) error {
	line, col := s.lineColAt(off)
	e := &SyntaxError{Offset: off, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
	s.err = e
	return e
}

// lineColAt computes the line/column of a byte offset by rescanning the
// input. Only error construction and explicit Position calls pay for it.
func (s *Scanner) lineColAt(off int) (line, col int) {
	if off > len(s.src) {
		off = len(s.src)
	}
	line, col = 1, 1
	for i := 0; i < off; i++ {
		if s.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// Next returns the next token. At end of input it returns io.EOF after
// verifying that all elements were closed and a root element was present.
// After any error, Next keeps returning the same error.
func (s *Scanner) Next() (Token, error) {
	var tok Token
	err := s.NextInto(&tok)
	return tok, err
}

// NextInto is Next writing the token into *t instead of returning it by
// value, sparing tight scan loops one struct copy per token. Every field
// of *t is overwritten on success; on error *t is left unspecified.
func (s *Scanner) NextInto(t *Token) error {
	if s.err != nil {
		return s.err
	}
	for {
		if err := s.next(t); err != nil {
			return err
		}
		switch t.Kind {
		case KindComment:
			if !s.opts.KeepComments {
				continue
			}
		case KindProcInst:
			if !s.opts.KeepProcInsts {
				continue
			}
		case KindCDATA:
			if s.opts.CoalesceCDATA {
				t.Kind = KindText
			}
		}
		return nil
	}
}

func (s *Scanner) next(t *Token) error {
	if s.pos >= len(s.src) {
		if len(s.stack) > 0 {
			return s.errorf(s.pos, "unexpected EOF: unclosed element <%s>", s.stack[len(s.stack)-1])
		}
		if !s.sawRoot {
			return s.errorf(s.pos, "document has no root element")
		}
		return io.EOF
	}
	start := s.pos
	if s.src[s.pos] != '<' {
		return s.scanText(start, t)
	}
	// Markup.
	if s.pos+1 >= len(s.src) {
		return s.errorf(s.pos, "unexpected EOF after '<'")
	}
	switch s.src[s.pos+1] {
	case '?':
		return s.scanPI(start, t)
	case '!':
		return s.scanBang(start, t)
	case '/':
		return s.scanEndTag(start, t)
	default:
		return s.scanStartTag(start, t)
	}
}

// scanText scans a run of character data up to the next '<'. When the run
// contains no references the token text aliases the input; otherwise the
// decoded text is built chunk-wise.
func (s *Scanner) scanText(start int, t *Token) error {
	end := len(s.src)
	if i := bytes.IndexByte(s.src[s.pos:], '<'); i >= 0 {
		end = s.pos + i
	}
	seg := s.src[s.pos:end]
	var text string
	if bytes.IndexByte(seg, '&') < 0 {
		// Zero-copy path: no references to decode.
		if i := bytes.Index(seg, []byte("]]>")); i >= 0 {
			return s.errorf(s.pos+i, "']]>' not allowed in character data")
		}
		text = s.str[s.pos:end]
		s.pos = end
	} else {
		var b strings.Builder
		b.Grow(len(seg))
		for s.pos < end {
			switch c := s.src[s.pos]; c {
			case '&':
				r, err := s.scanReference()
				if err != nil {
					return err
				}
				b.WriteString(r)
			case ']':
				// "]]>" must not appear in character data.
				if s.pos+2 < len(s.src) && s.src[s.pos+1] == ']' && s.src[s.pos+2] == '>' {
					return s.errorf(s.pos, "']]>' not allowed in character data")
				}
				b.WriteByte(c)
				s.pos++
			default:
				// Copy the whole plain chunk up to the next special byte.
				q := s.pos + 1
				for q < end && s.src[q] != '&' && s.src[q] != ']' {
					q++
				}
				b.WriteString(s.str[s.pos:q])
				s.pos = q
			}
		}
		text = b.String()
	}
	if len(s.stack) == 0 {
		// Text outside the root element must be whitespace only.
		if strings.TrimSpace(text) != "" {
			return s.errorf(start, "character data outside root element")
		}
		// Whitespace outside the root is not document content.
		*t = Token{
			Kind: KindText, Text: "", Offset: start, End: s.pos,
			ContentByte: s.contentByte, Depth: 0,
		}
		return nil
	}
	*t = Token{
		Kind: KindText, Text: text, Offset: start, End: s.pos,
		ContentByte: s.contentByte, Depth: len(s.stack),
	}
	s.contentByte += len(text)
	return nil
}

// scanReference scans &name; or &#NN; / &#xNN; starting at '&'.
func (s *Scanner) scanReference() (string, error) {
	start := s.pos
	s.pos++ // consume '&'
	semi := -1
	for i := s.pos; i < len(s.src) && i < s.pos+64; i++ {
		if s.src[i] == ';' {
			semi = i
			break
		}
	}
	if semi < 0 {
		return "", s.errorf(start, "unterminated entity reference")
	}
	name := s.str[s.pos:semi]
	s.pos = semi + 1
	if name == "" {
		return "", s.errorf(start, "empty entity reference")
	}
	if name[0] == '#' {
		r, err := decodeCharRef(name[1:])
		if err != nil {
			return "", s.errorf(start, "invalid character reference &%s;: %v", name, err)
		}
		return string(r), nil
	}
	if v, ok := s.lookupEntity(name); ok {
		return v, nil
	}
	return "", s.errorf(start, "undefined entity &%s;", name)
}

func decodeCharRef(body string) (rune, error) {
	if body == "" {
		return 0, fmt.Errorf("empty")
	}
	base := 10
	if body[0] == 'x' || body[0] == 'X' {
		base = 16
		body = body[1:]
		if body == "" {
			return 0, fmt.Errorf("empty hex")
		}
	}
	var n int64
	for _, c := range body {
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad digit %q", c)
		}
		n = n*int64(base) + d
		if n > utf8.MaxRune {
			return 0, fmt.Errorf("out of range")
		}
	}
	r := rune(n)
	if !isXMLChar(r) {
		return 0, fmt.Errorf("not an XML character")
	}
	return r, nil
}

// isXMLChar reports whether r is a legal XML 1.0 character.
func isXMLChar(r rune) bool {
	return r == 0x9 || r == 0xA || r == 0xD ||
		(r >= 0x20 && r <= 0xD7FF) ||
		(r >= 0xE000 && r <= 0xFFFD) ||
		(r >= 0x10000 && r <= 0x10FFFF)
}

// isNameStart reports whether r may begin an XML name.
func isNameStart(r rune) bool {
	return r == '_' || r == ':' || unicode.IsLetter(r)
}

// isNameChar reports whether r may continue an XML name.
func isNameChar(r rune) bool {
	return isNameStart(r) || r == '-' || r == '.' || unicode.IsDigit(r) ||
		unicode.Is(unicode.Mn, r) || unicode.Is(unicode.Mc, r)
}

// IsName reports whether s is a syntactically valid XML name.
func IsName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 {
			if !isNameStart(r) {
				return false
			}
		} else if !isNameChar(r) {
			return false
		}
	}
	return true
}

// scanName scans an XML name at the current position. The result aliases
// the input.
func (s *Scanner) scanName() (string, error) {
	start := s.pos
	if s.pos >= len(s.src) {
		// Match utf8.DecodeRune's behaviour on an empty tail.
		return "", s.errorf(s.pos, "expected name, found %q", utf8.RuneError)
	}
	// ASCII fast path: names are overwhelmingly [A-Za-z0-9_:.-].
	c := s.src[s.pos]
	if isASCIINameStart(c) {
		s.pos++
		for s.pos < len(s.src) {
			c = s.src[s.pos]
			if isASCIINameChar(c) {
				s.pos++
				continue
			}
			if c < utf8.RuneSelf {
				return s.str[start:s.pos], nil
			}
			break
		}
		if s.pos >= len(s.src) {
			return s.str[start:s.pos], nil
		}
	} else if c < utf8.RuneSelf {
		r, _ := utf8.DecodeRune(s.src[s.pos:])
		return "", s.errorf(s.pos, "expected name, found %q", r)
	} else {
		r, size := utf8.DecodeRune(s.src[s.pos:])
		if !isNameStart(r) {
			return "", s.errorf(s.pos, "expected name, found %q", r)
		}
		s.pos += size
	}
	for s.pos < len(s.src) {
		r, size := utf8.DecodeRune(s.src[s.pos:])
		if !isNameChar(r) {
			break
		}
		s.pos += size
	}
	return s.str[start:s.pos], nil
}

func isASCIINameStart(c byte) bool {
	return c == '_' || c == ':' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isASCIINameChar(c byte) bool {
	return isASCIINameStart(c) || c == '-' || c == '.' || ('0' <= c && c <= '9')
}

func (s *Scanner) skipSpace() {
	for s.pos < len(s.src) {
		switch s.src[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

// scanStartTag scans <name attr="v" ...> or <name .../>.
func (s *Scanner) scanStartTag(start int, t *Token) error {
	s.pos++ // consume '<'
	name, err := s.scanName()
	if err != nil {
		return err
	}
	var attrs []Attr
	if s.opts.ReuseAttrs {
		attrs = s.attrBuf[:0]
	}
	for {
		s.skipSpace()
		if s.pos >= len(s.src) {
			return s.errorf(start, "unexpected EOF in tag <%s>", name)
		}
		c := s.src[s.pos]
		if c == '>' || c == '/' {
			break
		}
		aname, err := s.scanName()
		if err != nil {
			return err
		}
		s.skipSpace()
		if s.pos >= len(s.src) || s.src[s.pos] != '=' {
			return s.errorf(s.pos, "expected '=' after attribute name %q", aname)
		}
		s.pos++
		s.skipSpace()
		val, err := s.scanAttrValue()
		if err != nil {
			return err
		}
		for _, a := range attrs {
			if a.Name == aname {
				return s.errorf(start, "duplicate attribute %q in element <%s>", aname, name)
			}
		}
		if attrs == nil {
			attrs = make([]Attr, 0, 4)
		}
		attrs = append(attrs, Attr{Name: aname, Value: val})
	}
	if s.opts.ReuseAttrs {
		s.attrBuf = attrs[:0]
		if len(attrs) == 0 {
			attrs = nil
		}
	}
	selfClosing := false
	if s.src[s.pos] == '/' {
		selfClosing = true
		s.pos++
		if s.pos >= len(s.src) || s.src[s.pos] != '>' {
			return s.errorf(s.pos, "expected '>' after '/' in tag <%s>", name)
		}
	}
	s.pos++ // consume '>'

	if s.rootClosed {
		return s.errorf(start, "element <%s> after root element closed", name)
	}
	if len(s.stack) == 0 && s.sawRoot {
		return s.errorf(start, "second root element <%s>", name)
	}
	depth := len(s.stack)
	s.sawRoot = true
	if !selfClosing {
		s.stack = append(s.stack, name)
	} else if depth == 0 {
		s.rootClosed = true
	}
	*t = Token{
		Kind: KindStartElement, Name: name, Attrs: attrs, SelfClosing: selfClosing,
		Offset: start, End: s.pos,
		ContentByte: s.contentByte, Depth: depth,
	}
	return nil
}

// scanAttrValue scans a quoted attribute value with references decoded.
// Values without references alias the input.
func (s *Scanner) scanAttrValue() (string, error) {
	if s.pos >= len(s.src) {
		return "", s.errorf(s.pos, "unexpected EOF in attribute value")
	}
	quote := s.src[s.pos]
	if quote != '"' && quote != '\'' {
		return "", s.errorf(s.pos, "attribute value must be quoted")
	}
	s.pos++
	// Zero-copy path: a clean run up to the closing quote.
	if rel := bytes.IndexByte(s.src[s.pos:], quote); rel >= 0 {
		seg := s.src[s.pos : s.pos+rel]
		if bytes.IndexByte(seg, '&') < 0 && bytes.IndexByte(seg, '<') < 0 {
			val := s.str[s.pos : s.pos+rel]
			s.pos += rel + 1
			return val, nil
		}
	}
	var b strings.Builder
	for {
		if s.pos >= len(s.src) {
			return "", s.errorf(s.pos, "unterminated attribute value")
		}
		c := s.src[s.pos]
		switch {
		case c == quote:
			s.pos++
			return b.String(), nil
		case c == '<':
			return "", s.errorf(s.pos, "'<' not allowed in attribute value")
		case c == '&':
			r, err := s.scanReference()
			if err != nil {
				return "", err
			}
			b.WriteString(r)
		default:
			b.WriteByte(c)
			s.pos++
		}
	}
}

// scanEndTag scans </name>.
func (s *Scanner) scanEndTag(start int, t *Token) error {
	s.pos += 2 // consume "</"
	name, err := s.scanName()
	if err != nil {
		return err
	}
	s.skipSpace()
	if s.pos >= len(s.src) || s.src[s.pos] != '>' {
		return s.errorf(s.pos, "expected '>' in end tag </%s>", name)
	}
	s.pos++
	if len(s.stack) == 0 {
		return s.errorf(start, "unexpected end tag </%s>", name)
	}
	top := s.stack[len(s.stack)-1]
	if top != name {
		return s.errorf(start, "end tag </%s> does not match open element <%s>", name, top)
	}
	s.stack = s.stack[:len(s.stack)-1]
	if len(s.stack) == 0 {
		s.rootClosed = true
	}
	*t = Token{
		Kind: KindEndElement, Name: name,
		Offset: start, End: s.pos,
		ContentByte: s.contentByte, Depth: len(s.stack),
	}
	return nil
}

// scanPI scans <?target data?> (and the XML declaration).
func (s *Scanner) scanPI(start int, t *Token) error {
	s.pos += 2 // consume "<?"
	name, err := s.scanName()
	if err != nil {
		return err
	}
	dataStart := s.pos
	end := indexFrom(s.src, s.pos, "?>")
	if end < 0 {
		return s.errorf(start, "unterminated processing instruction <?%s", name)
	}
	data := strings.TrimLeft(s.str[dataStart:end], " \t\r\n")
	s.pos = end + 2
	kind := KindProcInst
	if name == "xml" || name == "XML" {
		if start != 0 {
			return s.errorf(start, "XML declaration not at start of document")
		}
		kind = KindXMLDecl
	}
	*t = Token{
		Kind: kind, Name: name, Text: data,
		Offset: start, End: s.pos,
		ContentByte: s.contentByte, Depth: len(s.stack),
	}
	return nil
}

// scanBang dispatches <!-- , <![CDATA[ and <!DOCTYPE.
func (s *Scanner) scanBang(start int, t *Token) error {
	rest := s.src[s.pos:]
	switch {
	case hasPrefix(rest, "<!--"):
		return s.scanComment(start, t)
	case hasPrefix(rest, "<![CDATA["):
		return s.scanCDATA(start, t)
	case hasPrefix(rest, "<!DOCTYPE"):
		return s.scanDoctype(start, t)
	default:
		return s.errorf(start, "unrecognized markup declaration")
	}
}

func (s *Scanner) scanComment(start int, t *Token) error {
	s.pos += 4 // consume "<!--"
	end := indexFrom(s.src, s.pos, "-->")
	if end < 0 {
		return s.errorf(start, "unterminated comment")
	}
	body := s.str[s.pos:end]
	if strings.Contains(body, "--") {
		return s.errorf(start, "'--' not allowed inside comment")
	}
	s.pos = end + 3
	*t = Token{
		Kind: KindComment, Text: body,
		Offset: start, End: s.pos,
		ContentByte: s.contentByte, Depth: len(s.stack),
	}
	return nil
}

func (s *Scanner) scanCDATA(start int, t *Token) error {
	if len(s.stack) == 0 {
		return s.errorf(start, "CDATA section outside root element")
	}
	s.pos += 9 // consume "<![CDATA["
	end := indexFrom(s.src, s.pos, "]]>")
	if end < 0 {
		return s.errorf(start, "unterminated CDATA section")
	}
	body := s.str[s.pos:end]
	s.pos = end + 3
	*t = Token{
		Kind: KindCDATA, Text: body,
		Offset: start, End: s.pos,
		ContentByte: s.contentByte, Depth: len(s.stack),
	}
	s.contentByte += len(body)
	return nil
}

// scanDoctype scans <!DOCTYPE name ... [internal subset]> and harvests
// ENTITY declarations from the internal subset.
func (s *Scanner) scanDoctype(start int, t *Token) error {
	if s.sawRoot {
		return s.errorf(start, "DOCTYPE after root element")
	}
	s.pos += len("<!DOCTYPE")
	s.skipSpace()
	name, err := s.scanName()
	if err != nil {
		return err
	}
	bodyStart := s.pos
	depth := 0
	for {
		if s.pos >= len(s.src) {
			return s.errorf(start, "unterminated DOCTYPE")
		}
		switch s.src[s.pos] {
		case '[':
			depth++
			s.pos++
		case ']':
			depth--
			s.pos++
		case '"', '\'':
			q := s.src[s.pos]
			s.pos++
			for s.pos < len(s.src) && s.src[s.pos] != q {
				s.pos++
			}
			if s.pos >= len(s.src) {
				return s.errorf(start, "unterminated literal in DOCTYPE")
			}
			s.pos++
		case '>':
			if depth == 0 {
				body := s.str[bodyStart:s.pos]
				s.pos++
				s.harvestEntities(body)
				*t = Token{
					Kind: KindDoctype, Name: name, Text: strings.TrimSpace(body),
					Offset: start, End: s.pos,
					ContentByte: s.contentByte, Depth: 0,
				}
				return nil
			}
			s.pos++
		default:
			s.pos++
		}
	}
}

// harvestEntities extracts <!ENTITY name "value"> declarations from a
// DOCTYPE internal subset and registers them for reference expansion.
func (s *Scanner) harvestEntities(subset string) {
	for {
		i := strings.Index(subset, "<!ENTITY")
		if i < 0 {
			return
		}
		subset = subset[i+len("<!ENTITY"):]
		rest := strings.TrimLeft(subset, " \t\r\n")
		if rest == "" || rest[0] == '%' {
			continue // parameter entities not supported
		}
		j := strings.IndexAny(rest, " \t\r\n")
		if j < 0 {
			return
		}
		name := rest[:j]
		rest = strings.TrimLeft(rest[j:], " \t\r\n")
		if rest == "" || (rest[0] != '"' && rest[0] != '\'') {
			continue
		}
		q := rest[0]
		k := strings.IndexByte(rest[1:], q)
		if k < 0 {
			return
		}
		if IsName(name) {
			s.defineEntity(name, rest[1:1+k])
		}
		subset = rest[1+k:]
	}
}

func hasPrefix(b []byte, p string) bool {
	return len(b) >= len(p) && string(b[:len(p)]) == p
}

func indexFrom(b []byte, from int, sub string) int {
	i := bytes.Index(b[from:], []byte(sub))
	if i < 0 {
		return -1
	}
	return from + i
}

// Tokens scans src to completion and returns all tokens. Because the
// result retains every token, attribute slices are copied out of the
// shared buffer when Options.ReuseAttrs is set.
func Tokens(src []byte, opts Options) ([]Token, error) {
	s := New(src, opts)
	var out []Token
	for {
		tok, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if opts.ReuseAttrs && len(tok.Attrs) > 0 {
			tok.Attrs = append([]Attr(nil), tok.Attrs...)
		}
		out = append(out, tok)
	}
}

// Content returns the character content of src: the concatenation of all
// text and CDATA, with references decoded.
func Content(src []byte) (string, error) {
	s := New(src, Options{})
	var b strings.Builder
	for {
		tok, err := s.Next()
		if err == io.EOF {
			return b.String(), nil
		}
		if err != nil {
			return "", err
		}
		if tok.Kind == KindText || tok.Kind == KindCDATA {
			b.WriteString(tok.Text)
		}
	}
}

// EscapeText writes s with <, >, & escaped for use as character data.
// Strings that need no escaping are returned unchanged, without copying.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "<>&") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	last := 0
	for i := 0; i < len(s); i++ {
		var esc string
		switch s[i] {
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '&':
			esc = "&amp;"
		default:
			continue
		}
		b.WriteString(s[last:i])
		b.WriteString(esc)
		last = i + 1
	}
	b.WriteString(s[last:])
	return b.String()
}

// EscapeAttr writes s escaped for use inside a double-quoted attribute.
// Strings that need no escaping are returned unchanged, without copying.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, "<&\"\n\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	last := 0
	for i := 0; i < len(s); i++ {
		var esc string
		switch s[i] {
		case '<':
			esc = "&lt;"
		case '&':
			esc = "&amp;"
		case '"':
			esc = "&quot;"
		case '\n':
			esc = "&#10;"
		case '\t':
			esc = "&#9;"
		default:
			continue
		}
		b.WriteString(s[last:i])
		b.WriteString(esc)
		last = i + 1
	}
	b.WriteString(s[last:])
	return b.String()
}
