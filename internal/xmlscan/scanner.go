package xmlscan

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Options configure a Scanner.
type Options struct {
	// Entities maps additional entity names (without & and ;) to their
	// replacement text. The five predefined XML entities are always
	// available. Entities declared in the DOCTYPE internal subset are
	// added automatically.
	Entities map[string]string

	// KeepComments reports comments as tokens instead of skipping them.
	KeepComments bool

	// KeepProcInsts reports processing instructions as tokens instead of
	// skipping them.
	KeepProcInsts bool

	// CoalesceCDATA makes CDATA sections come back as KindText tokens,
	// merged with adjacent character data.
	CoalesceCDATA bool
}

// Scanner tokenizes a complete XML document held in memory.
// The zero value is not usable; call New.
type Scanner struct {
	src  []byte
	pos  int
	line int
	col  int

	contentPos int // rune offset within character content so far
	stack      []string
	opts       Options
	entities   map[string]string

	// Incremental line/col cache: position lcOff is on line lcLine at
	// column lcCol. Offsets are queried in nearly ascending order, so
	// advancing from the cache keeps position tracking O(input) overall.
	lcOff  int
	lcLine int
	lcCol  int

	sawRoot    bool // a root element has been seen
	rootClosed bool // ... and closed
	started    bool // any token delivered yet
	err        error
}

// New returns a Scanner over src.
func New(src []byte, opts Options) *Scanner {
	ents := map[string]string{
		"lt":   "<",
		"gt":   ">",
		"amp":  "&",
		"apos": "'",
		"quot": `"`,
	}
	for k, v := range opts.Entities {
		ents[k] = v
	}
	return &Scanner{src: src, line: 1, col: 1, opts: opts, entities: ents, lcLine: 1, lcCol: 1}
}

// Depth returns the current element nesting depth.
func (s *Scanner) Depth() int { return len(s.stack) }

// ContentPos returns the rune offset within character content reached so far.
func (s *Scanner) ContentPos() int { return s.contentPos }

func (s *Scanner) errorf(off int, format string, args ...any) error {
	line, col := s.lineColAt(off)
	e := &SyntaxError{Offset: off, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
	s.err = e
	return e
}

// lineColAt computes the line/column of a byte offset, advancing from the
// cached position when possible (token offsets arrive in ascending
// order) and rescanning only on the rare backward query.
func (s *Scanner) lineColAt(off int) (line, col int) {
	if off > len(s.src) {
		off = len(s.src)
	}
	if off < s.lcOff {
		s.lcOff, s.lcLine, s.lcCol = 0, 1, 1
	}
	for i := s.lcOff; i < off; i++ {
		if s.src[i] == '\n' {
			s.lcLine++
			s.lcCol = 1
		} else {
			s.lcCol++
		}
	}
	s.lcOff = off
	return s.lcLine, s.lcCol
}

// Next returns the next token. At end of input it returns io.EOF after
// verifying that all elements were closed and a root element was present.
// After any error, Next keeps returning the same error.
func (s *Scanner) Next() (Token, error) {
	if s.err != nil {
		return Token{}, s.err
	}
	for {
		tok, err := s.next()
		if err != nil {
			return Token{}, err
		}
		switch tok.Kind {
		case KindComment:
			if !s.opts.KeepComments {
				continue
			}
		case KindProcInst:
			if !s.opts.KeepProcInsts {
				continue
			}
		case KindCDATA:
			if s.opts.CoalesceCDATA {
				tok.Kind = KindText
			}
		}
		return tok, nil
	}
}

func (s *Scanner) next() (Token, error) {
	if s.pos >= len(s.src) {
		if len(s.stack) > 0 {
			return Token{}, s.errorf(s.pos, "unexpected EOF: unclosed element <%s>", s.stack[len(s.stack)-1])
		}
		if !s.sawRoot {
			return Token{}, s.errorf(s.pos, "document has no root element")
		}
		return Token{}, io.EOF
	}
	start := s.pos
	if s.src[s.pos] != '<' {
		return s.scanText(start)
	}
	// Markup.
	if s.pos+1 >= len(s.src) {
		return Token{}, s.errorf(s.pos, "unexpected EOF after '<'")
	}
	switch s.src[s.pos+1] {
	case '?':
		return s.scanPI(start)
	case '!':
		return s.scanBang(start)
	case '/':
		return s.scanEndTag(start)
	default:
		return s.scanStartTag(start)
	}
}

// scanText scans a run of character data up to the next '<'.
func (s *Scanner) scanText(start int) (Token, error) {
	var b strings.Builder
	for s.pos < len(s.src) && s.src[s.pos] != '<' {
		c := s.src[s.pos]
		switch c {
		case '&':
			r, err := s.scanReference()
			if err != nil {
				return Token{}, err
			}
			b.WriteString(r)
		case ']':
			// "]]>" must not appear in character data.
			if s.pos+2 < len(s.src) && s.src[s.pos+1] == ']' && s.src[s.pos+2] == '>' {
				return Token{}, s.errorf(s.pos, "']]>' not allowed in character data")
			}
			b.WriteByte(c)
			s.pos++
		default:
			b.WriteByte(c)
			s.pos++
		}
	}
	text := b.String()
	if len(s.stack) == 0 {
		// Text outside the root element must be whitespace only.
		if strings.TrimSpace(text) != "" {
			return Token{}, s.errorf(start, "character data outside root element")
		}
		// Whitespace outside the root is not document content.
		line, col := s.lineColAt(start)
		return Token{
			Kind: KindText, Text: "", Offset: start, End: s.pos,
			Line: line, Col: col, ContentPos: s.contentPos, Depth: 0,
		}, nil
	}
	line, col := s.lineColAt(start)
	tok := Token{
		Kind: KindText, Text: text, Offset: start, End: s.pos,
		Line: line, Col: col, ContentPos: s.contentPos, Depth: len(s.stack),
	}
	s.contentPos += utf8.RuneCountInString(text)
	return tok, nil
}

// scanReference scans &name; or &#NN; / &#xNN; starting at '&'.
func (s *Scanner) scanReference() (string, error) {
	start := s.pos
	s.pos++ // consume '&'
	semi := -1
	for i := s.pos; i < len(s.src) && i < s.pos+64; i++ {
		if s.src[i] == ';' {
			semi = i
			break
		}
	}
	if semi < 0 {
		return "", s.errorf(start, "unterminated entity reference")
	}
	name := string(s.src[s.pos:semi])
	s.pos = semi + 1
	if name == "" {
		return "", s.errorf(start, "empty entity reference")
	}
	if name[0] == '#' {
		r, err := decodeCharRef(name[1:])
		if err != nil {
			return "", s.errorf(start, "invalid character reference &%s;: %v", name, err)
		}
		return string(r), nil
	}
	if v, ok := s.entities[name]; ok {
		return v, nil
	}
	return "", s.errorf(start, "undefined entity &%s;", name)
}

func decodeCharRef(body string) (rune, error) {
	if body == "" {
		return 0, fmt.Errorf("empty")
	}
	base := 10
	if body[0] == 'x' || body[0] == 'X' {
		base = 16
		body = body[1:]
		if body == "" {
			return 0, fmt.Errorf("empty hex")
		}
	}
	var n int64
	for _, c := range body {
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad digit %q", c)
		}
		n = n*int64(base) + d
		if n > utf8.MaxRune {
			return 0, fmt.Errorf("out of range")
		}
	}
	r := rune(n)
	if !isXMLChar(r) {
		return 0, fmt.Errorf("not an XML character")
	}
	return r, nil
}

// isXMLChar reports whether r is a legal XML 1.0 character.
func isXMLChar(r rune) bool {
	return r == 0x9 || r == 0xA || r == 0xD ||
		(r >= 0x20 && r <= 0xD7FF) ||
		(r >= 0xE000 && r <= 0xFFFD) ||
		(r >= 0x10000 && r <= 0x10FFFF)
}

// isNameStart reports whether r may begin an XML name.
func isNameStart(r rune) bool {
	return r == '_' || r == ':' || unicode.IsLetter(r)
}

// isNameChar reports whether r may continue an XML name.
func isNameChar(r rune) bool {
	return isNameStart(r) || r == '-' || r == '.' || unicode.IsDigit(r) ||
		unicode.Is(unicode.Mn, r) || unicode.Is(unicode.Mc, r)
}

// IsName reports whether s is a syntactically valid XML name.
func IsName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 {
			if !isNameStart(r) {
				return false
			}
		} else if !isNameChar(r) {
			return false
		}
	}
	return true
}

// scanName scans an XML name at the current position.
func (s *Scanner) scanName() (string, error) {
	start := s.pos
	r, size := utf8.DecodeRune(s.src[s.pos:])
	if !isNameStart(r) {
		return "", s.errorf(s.pos, "expected name, found %q", r)
	}
	s.pos += size
	for s.pos < len(s.src) {
		r, size = utf8.DecodeRune(s.src[s.pos:])
		if !isNameChar(r) {
			break
		}
		s.pos += size
	}
	return string(s.src[start:s.pos]), nil
}

func (s *Scanner) skipSpace() {
	for s.pos < len(s.src) {
		switch s.src[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

// scanStartTag scans <name attr="v" ...> or <name .../>.
func (s *Scanner) scanStartTag(start int) (Token, error) {
	s.pos++ // consume '<'
	name, err := s.scanName()
	if err != nil {
		return Token{}, err
	}
	var attrs []Attr
	for {
		s.skipSpace()
		if s.pos >= len(s.src) {
			return Token{}, s.errorf(start, "unexpected EOF in tag <%s>", name)
		}
		c := s.src[s.pos]
		if c == '>' || c == '/' {
			break
		}
		aname, err := s.scanName()
		if err != nil {
			return Token{}, err
		}
		s.skipSpace()
		if s.pos >= len(s.src) || s.src[s.pos] != '=' {
			return Token{}, s.errorf(s.pos, "expected '=' after attribute name %q", aname)
		}
		s.pos++
		s.skipSpace()
		val, err := s.scanAttrValue()
		if err != nil {
			return Token{}, err
		}
		for _, a := range attrs {
			if a.Name == aname {
				return Token{}, s.errorf(start, "duplicate attribute %q in element <%s>", aname, name)
			}
		}
		attrs = append(attrs, Attr{Name: aname, Value: val})
	}
	selfClosing := false
	if s.src[s.pos] == '/' {
		selfClosing = true
		s.pos++
		if s.pos >= len(s.src) || s.src[s.pos] != '>' {
			return Token{}, s.errorf(s.pos, "expected '>' after '/' in tag <%s>", name)
		}
	}
	s.pos++ // consume '>'

	if s.rootClosed {
		return Token{}, s.errorf(start, "element <%s> after root element closed", name)
	}
	if len(s.stack) == 0 && s.sawRoot && !selfClosing {
		return Token{}, s.errorf(start, "second root element <%s>", name)
	}
	if len(s.stack) == 0 && s.sawRoot && selfClosing {
		return Token{}, s.errorf(start, "second root element <%s>", name)
	}
	depth := len(s.stack)
	s.sawRoot = true
	if !selfClosing {
		s.stack = append(s.stack, name)
	} else if depth == 0 {
		s.rootClosed = true
	}
	line, col := s.lineColAt(start)
	return Token{
		Kind: KindStartElement, Name: name, Attrs: attrs, SelfClosing: selfClosing,
		Offset: start, End: s.pos, Line: line, Col: col,
		ContentPos: s.contentPos, Depth: depth,
	}, nil
}

// scanAttrValue scans a quoted attribute value with references decoded.
func (s *Scanner) scanAttrValue() (string, error) {
	if s.pos >= len(s.src) {
		return "", s.errorf(s.pos, "unexpected EOF in attribute value")
	}
	quote := s.src[s.pos]
	if quote != '"' && quote != '\'' {
		return "", s.errorf(s.pos, "attribute value must be quoted")
	}
	s.pos++
	var b strings.Builder
	for {
		if s.pos >= len(s.src) {
			return "", s.errorf(s.pos, "unterminated attribute value")
		}
		c := s.src[s.pos]
		switch {
		case c == quote:
			s.pos++
			return b.String(), nil
		case c == '<':
			return "", s.errorf(s.pos, "'<' not allowed in attribute value")
		case c == '&':
			r, err := s.scanReference()
			if err != nil {
				return "", err
			}
			b.WriteString(r)
		default:
			b.WriteByte(c)
			s.pos++
		}
	}
}

// scanEndTag scans </name>.
func (s *Scanner) scanEndTag(start int) (Token, error) {
	s.pos += 2 // consume "</"
	name, err := s.scanName()
	if err != nil {
		return Token{}, err
	}
	s.skipSpace()
	if s.pos >= len(s.src) || s.src[s.pos] != '>' {
		return Token{}, s.errorf(s.pos, "expected '>' in end tag </%s>", name)
	}
	s.pos++
	if len(s.stack) == 0 {
		return Token{}, s.errorf(start, "unexpected end tag </%s>", name)
	}
	top := s.stack[len(s.stack)-1]
	if top != name {
		return Token{}, s.errorf(start, "end tag </%s> does not match open element <%s>", name, top)
	}
	s.stack = s.stack[:len(s.stack)-1]
	if len(s.stack) == 0 {
		s.rootClosed = true
	}
	line, col := s.lineColAt(start)
	return Token{
		Kind: KindEndElement, Name: name,
		Offset: start, End: s.pos, Line: line, Col: col,
		ContentPos: s.contentPos, Depth: len(s.stack),
	}, nil
}

// scanPI scans <?target data?> (and the XML declaration).
func (s *Scanner) scanPI(start int) (Token, error) {
	s.pos += 2 // consume "<?"
	name, err := s.scanName()
	if err != nil {
		return Token{}, err
	}
	dataStart := s.pos
	end := indexFrom(s.src, s.pos, "?>")
	if end < 0 {
		return Token{}, s.errorf(start, "unterminated processing instruction <?%s", name)
	}
	data := strings.TrimLeft(string(s.src[dataStart:end]), " \t\r\n")
	s.pos = end + 2
	kind := KindProcInst
	if name == "xml" || name == "XML" {
		if start != 0 {
			return Token{}, s.errorf(start, "XML declaration not at start of document")
		}
		kind = KindXMLDecl
	}
	line, col := s.lineColAt(start)
	return Token{
		Kind: kind, Name: name, Text: data,
		Offset: start, End: s.pos, Line: line, Col: col,
		ContentPos: s.contentPos, Depth: len(s.stack),
	}, nil
}

// scanBang dispatches <!-- , <![CDATA[ and <!DOCTYPE.
func (s *Scanner) scanBang(start int) (Token, error) {
	rest := s.src[s.pos:]
	switch {
	case hasPrefix(rest, "<!--"):
		return s.scanComment(start)
	case hasPrefix(rest, "<![CDATA["):
		return s.scanCDATA(start)
	case hasPrefix(rest, "<!DOCTYPE"):
		return s.scanDoctype(start)
	default:
		return Token{}, s.errorf(start, "unrecognized markup declaration")
	}
}

func (s *Scanner) scanComment(start int) (Token, error) {
	s.pos += 4 // consume "<!--"
	end := indexFrom(s.src, s.pos, "-->")
	if end < 0 {
		return Token{}, s.errorf(start, "unterminated comment")
	}
	body := string(s.src[s.pos:end])
	if strings.Contains(body, "--") {
		return Token{}, s.errorf(start, "'--' not allowed inside comment")
	}
	s.pos = end + 3
	line, col := s.lineColAt(start)
	return Token{
		Kind: KindComment, Text: body,
		Offset: start, End: s.pos, Line: line, Col: col,
		ContentPos: s.contentPos, Depth: len(s.stack),
	}, nil
}

func (s *Scanner) scanCDATA(start int) (Token, error) {
	if len(s.stack) == 0 {
		return Token{}, s.errorf(start, "CDATA section outside root element")
	}
	s.pos += 9 // consume "<![CDATA["
	end := indexFrom(s.src, s.pos, "]]>")
	if end < 0 {
		return Token{}, s.errorf(start, "unterminated CDATA section")
	}
	body := string(s.src[s.pos:end])
	s.pos = end + 3
	line, col := s.lineColAt(start)
	tok := Token{
		Kind: KindCDATA, Text: body,
		Offset: start, End: s.pos, Line: line, Col: col,
		ContentPos: s.contentPos, Depth: len(s.stack),
	}
	s.contentPos += utf8.RuneCountInString(body)
	return tok, nil
}

// scanDoctype scans <!DOCTYPE name ... [internal subset]> and harvests
// ENTITY declarations from the internal subset.
func (s *Scanner) scanDoctype(start int) (Token, error) {
	if s.sawRoot {
		return Token{}, s.errorf(start, "DOCTYPE after root element")
	}
	s.pos += len("<!DOCTYPE")
	s.skipSpace()
	name, err := s.scanName()
	if err != nil {
		return Token{}, err
	}
	bodyStart := s.pos
	depth := 0
	for {
		if s.pos >= len(s.src) {
			return Token{}, s.errorf(start, "unterminated DOCTYPE")
		}
		switch s.src[s.pos] {
		case '[':
			depth++
			s.pos++
		case ']':
			depth--
			s.pos++
		case '"', '\'':
			q := s.src[s.pos]
			s.pos++
			for s.pos < len(s.src) && s.src[s.pos] != q {
				s.pos++
			}
			if s.pos >= len(s.src) {
				return Token{}, s.errorf(start, "unterminated literal in DOCTYPE")
			}
			s.pos++
		case '>':
			if depth == 0 {
				body := string(s.src[bodyStart:s.pos])
				s.pos++
				s.harvestEntities(body)
				line, col := s.lineColAt(start)
				return Token{
					Kind: KindDoctype, Name: name, Text: strings.TrimSpace(body),
					Offset: start, End: s.pos, Line: line, Col: col,
					ContentPos: s.contentPos, Depth: 0,
				}, nil
			}
			s.pos++
		default:
			s.pos++
		}
	}
}

// harvestEntities extracts <!ENTITY name "value"> declarations from a
// DOCTYPE internal subset and registers them for reference expansion.
func (s *Scanner) harvestEntities(subset string) {
	for {
		i := strings.Index(subset, "<!ENTITY")
		if i < 0 {
			return
		}
		subset = subset[i+len("<!ENTITY"):]
		rest := strings.TrimLeft(subset, " \t\r\n")
		if rest == "" || rest[0] == '%' {
			continue // parameter entities not supported
		}
		j := strings.IndexAny(rest, " \t\r\n")
		if j < 0 {
			return
		}
		name := rest[:j]
		rest = strings.TrimLeft(rest[j:], " \t\r\n")
		if rest == "" || (rest[0] != '"' && rest[0] != '\'') {
			continue
		}
		q := rest[0]
		k := strings.IndexByte(rest[1:], q)
		if k < 0 {
			return
		}
		if IsName(name) {
			s.entities[name] = rest[1 : 1+k]
		}
		subset = rest[1+k:]
	}
}

func hasPrefix(b []byte, p string) bool {
	return len(b) >= len(p) && string(b[:len(p)]) == p
}

func indexFrom(b []byte, from int, sub string) int {
	i := bytes.Index(b[from:], []byte(sub))
	if i < 0 {
		return -1
	}
	return from + i
}

// Tokens scans src to completion and returns all tokens.
func Tokens(src []byte, opts Options) ([]Token, error) {
	s := New(src, opts)
	var out []Token
	for {
		tok, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
	}
}

// Content returns the character content of src: the concatenation of all
// text and CDATA, with references decoded.
func Content(src []byte) (string, error) {
	toks, err := Tokens(src, Options{})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, t := range toks {
		if t.Kind == KindText || t.Kind == KindCDATA {
			b.WriteString(t.Text)
		}
	}
	return b.String(), nil
}

// EscapeText writes s with <, >, & escaped for use as character data.
func EscapeText(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// EscapeAttr writes s escaped for use inside a double-quoted attribute.
func EscapeAttr(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '<':
			b.WriteString("&lt;")
		case '&':
			b.WriteString("&amp;")
		case '"':
			b.WriteString("&quot;")
		case '\n':
			b.WriteString("&#10;")
		case '\t':
			b.WriteString("&#9;")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
