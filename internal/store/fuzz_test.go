package store

import (
	"bytes"
	"testing"

	"repro/internal/corpus"
)

// FuzzDecode feeds arbitrary (and seeded: truncated, bit-flipped)
// .gdag and WAL bytes into the two recovery-path readers. Both must
// reject damage with an error — never panic, and never allocate
// proportionally to a corrupted length field (the fuzzer's OOM limit
// enforces the latter).
func FuzzDecode(f *testing.F) {
	doc, err := corpus.Generate(corpus.DefaultConfig(40))
	if err != nil {
		f.Fatal(err)
	}
	var gdag bytes.Buffer
	if err := Encode(&gdag, doc); err != nil {
		f.Fatal(err)
	}
	f.Add(gdag.Bytes())
	f.Add(gdag.Bytes()[:gdag.Len()/2]) // truncated
	flipped := append([]byte(nil), gdag.Bytes()...)
	flipped[gdag.Len()/3] ^= 0x20 // bit-flipped body
	f.Add(flipped)

	// v3 seeds: the section-table image whole, truncated mid-directory
	// and mid-section, and bit-flipped in the directory (offsets) and in
	// a payload (CRC).
	var v3 bytes.Buffer
	if err := EncodeV3(&v3, doc); err != nil {
		f.Fatal(err)
	}
	f.Add(v3.Bytes())
	f.Add(v3.Bytes()[:v3HeaderLen+v3EntryLen/2])
	f.Add(v3.Bytes()[:v3.Len()/2])
	for _, off := range []int{v3HeaderLen + 8, v3.Len() / 2, v3.Len() - 1} {
		mut := append([]byte(nil), v3.Bytes()...)
		mut[off] ^= 0x04
		f.Add(mut)
	}

	// A WAL record region: two framed records, whole and truncated.
	var wal []byte
	wal = appendFrame(wal, RecordOps, 0xdeadbeef, []byte(`{"ops":[{"op":"set-attr","hierarchy":"words","index":0,"name":"k","value":"v"}]}`))
	wal = appendFrame(wal, RecordSnapshot, 0, gdag.Bytes())
	f.Add(wal)
	f.Add(wal[:len(wal)-3])
	f.Add([]byte("GWAL\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// .gdag path: any error is fine, corruption must never decode.
		if d, err := Decode(bytes.NewReader(data)); err == nil && d == nil {
			t.Fatal("Decode returned nil document without error")
		}
		// Mapped v3 path: open must bound every access to the image
		// (out-of-range section offsets are errors, not reads), and full
		// validation must never panic or over-read.
		if m, err := OpenMappedBytes(data); err == nil {
			if err := m.Validate(); err == nil {
				if _, derr := m.Document(); derr != nil {
					t.Fatalf("image validates but Document fails: %v", derr)
				}
			}
		}
		// WAL replay path: the scan never fails, but every record it
		// returns must re-verify (the frame checksum held).
		recs, good := ScanWALRecords(data)
		if good > int64(len(data)) {
			t.Fatalf("scan claimed %d valid bytes of %d", good, len(data))
		}
		if re, _ := ScanWALRecords(data[:good]); len(re) != len(recs) {
			t.Fatalf("valid prefix rescans to %d records, was %d", len(re), len(recs))
		}
		for _, r := range recs {
			if r.Kind != RecordOps && r.Kind != RecordSnapshot {
				t.Fatalf("scan surfaced unknown record kind %q", r.Kind)
			}
		}
	})
}
