package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/faultfs"
	"repro/internal/goddag"
)

// ErrV2 marks a file in the v2 varint format: the mapped open path
// cannot serve it and the caller should fall back to Decode. The file
// migrates to v3 on its next save.
var ErrV2 = errors.New("store: v2 format, decode required")

// mappedBytes tracks the total bytes currently memory-mapped by open
// Mapped handles; it decrements when a handle is closed (explicitly or
// by its finalizer once the document graph is unreachable).
var mappedBytes atomic.Int64

// MappedBytes reports the total bytes currently mapped by the store.
func MappedBytes() int64 { return mappedBytes.Load() }

// Mapped is an open v3 file: the raw bytes (usually a read-only file
// mapping) plus the validated section directory. Opening validates only
// the header, directory bounds, and the header checksum — microseconds,
// no decode. Document() adds the metadata and content checks and
// returns a lazily materializing document; the full section checksums
// and structural validation run once, on the document's first
// structural access (or eagerly via Validate).
type Mapped struct {
	data []byte
	m    *faultfs.Mapping // nil for byte-backed opens

	secs    [secMax + 1]secEntry
	present [secMax + 1]bool

	docOnce sync.Once
	doc     *goddag.Document
	docErr  error

	// Parsed by Document() from the meta section.
	contentLen, nhier, nelems, nattrs, nleaves, nstrings int
	rootTagID                                            uint32
	hierIDs                                              []uint32
	hierCounts                                           []int
}

type secEntry struct {
	off, n int
	crc    uint32
}

// SectionSize reports a section's payload size in bytes (0 when
// absent); ids are the secXxx constants. Used by the catalog's
// section-size metrics.
func (m *Mapped) SectionSizes() []int {
	out := make([]int, 0, secMax)
	for id := 1; id <= secMax; id++ {
		if m.present[id] {
			out = append(out, m.secs[id].n)
		}
	}
	return out
}

// Size reports the total mapped (or buffered) file size.
func (m *Mapped) Size() int { return len(m.data) }

// OpenMappedFile maps path through fsys and validates the v3 header.
// The mapping stays alive while the returned handle — or any document
// built from it, including editor clones — is reachable; it is released
// by Close or, failing that, a finalizer.
func OpenMappedFile(fsys faultfs.FS, path string) (*Mapped, error) {
	mp, err := faultfs.Map(fsys, path)
	if err != nil {
		return nil, fmt.Errorf("store: open mapped %s: %w", path, err)
	}
	m, err := openMapped(mp.Data)
	if err != nil {
		mp.Close()
		return nil, err
	}
	m.m = mp
	mappedBytes.Add(int64(len(m.data)))
	runtime.SetFinalizer(m, func(m *Mapped) { m.release() })
	return m, nil
}

// OpenMappedBytes opens an in-memory v3 image (fuzzing, decode).
func OpenMappedBytes(data []byte) (*Mapped, error) {
	return openMapped(data)
}

// OpenMappedDoc is the one-call open path: map, validate, and return
// the lazily materializing document. The handle is returned alongside
// for metrics and explicit lifetime control.
func OpenMappedDoc(fsys faultfs.FS, path string) (*goddag.Document, *Mapped, error) {
	m, err := OpenMappedFile(fsys, path)
	if err != nil {
		return nil, nil, err
	}
	doc, err := m.Document()
	if err != nil {
		m.Close()
		return nil, nil, err
	}
	return doc, m, nil
}

// release drops the mapping (idempotent).
func (m *Mapped) release() {
	if m.m != nil {
		mappedBytes.Add(-int64(len(m.data)))
		m.m.Close()
		m.m = nil
	}
}

// Close unmaps the file immediately. Any document previously returned
// by Document() must no longer be used: its strings alias the mapping.
func (m *Mapped) Close() error {
	runtime.SetFinalizer(m, nil)
	m.release()
	return nil
}

// openMapped validates the header and section directory: magic,
// version, directory bounds, header CRC, and that every section lies
// 8-aligned, in ascending order, inside the file. All later section
// reads are bounds-safe after this.
func openMapped(data []byte) (*Mapped, error) {
	if len(data) < v3HeaderLen+4 {
		if len(data) >= 5 && string(data[:4]) == magic && data[4] == version {
			return nil, ErrV2
		}
		return nil, fmt.Errorf("store: mapped open: file too short (%d bytes)", len(data))
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("store: mapped open: bad magic %q", data[:4])
	}
	if data[4] == version {
		return nil, ErrV2
	}
	if data[4] != v3Version {
		return nil, fmt.Errorf("store: mapped open: unsupported version %d", data[4])
	}
	nsec := int(binary.LittleEndian.Uint32(data[8:]))
	if nsec <= 0 || nsec > v3MaxSections {
		return nil, fmt.Errorf("store: mapped open: implausible section count %d", nsec)
	}
	dirEnd := v3HeaderLen + nsec*v3EntryLen
	if dirEnd+4 > len(data) {
		return nil, fmt.Errorf("store: mapped open: directory truncated")
	}
	if got, want := crc32.Checksum(data[:dirEnd], crcTable), binary.LittleEndian.Uint32(data[dirEnd:]); got != want {
		return nil, fmt.Errorf("store: mapped open: header checksum mismatch")
	}
	m := &Mapped{data: data}
	prevEnd := uint64(align8(dirEnd + 4))
	for i := 0; i < nsec; i++ {
		e := data[v3HeaderLen+i*v3EntryLen:]
		id := binary.LittleEndian.Uint32(e)
		n := binary.LittleEndian.Uint32(e[4:])
		off := binary.LittleEndian.Uint64(e[8:])
		crc := binary.LittleEndian.Uint32(e[16:])
		if off%8 != 0 || off < prevEnd || off+uint64(n) < off || off+uint64(n) > uint64(len(data)) {
			return nil, fmt.Errorf("store: mapped open: section %d bounds [%d,+%d) invalid", id, off, n)
		}
		prevEnd = off + uint64(n)
		if id >= 1 && id <= secMax {
			if m.present[id] {
				return nil, fmt.Errorf("store: mapped open: duplicate section %d", id)
			}
			m.secs[id] = secEntry{off: int(off), n: int(n), crc: crc}
			m.present[id] = true
		}
		// Unknown ids are tolerated for forward compatibility.
	}
	for id := 1; id <= secMax; id++ {
		if !m.present[id] {
			return nil, fmt.Errorf("store: mapped open: missing section %d", id)
		}
	}
	return m, nil
}

// sec returns a section's payload; bounds were validated at open.
func (m *Mapped) sec(id int) []byte {
	e := m.secs[id]
	return m.data[e.off : e.off+e.n]
}

// checkCRC verifies one section's checksum against its directory entry.
func (m *Mapped) checkCRC(id int) error {
	if got := crc32.Checksum(m.sec(id), crcTable); got != m.secs[id].crc {
		return fmt.Errorf("store: section %d checksum mismatch", id)
	}
	return nil
}

// Document returns the lazily materializing document over the mapping.
// It verifies the meta and content sections (checksums plus O(1)
// length cross-checks for every column) and resolves the root and
// hierarchy names; the element columns are validated on first
// structural access. Repeated calls return the same document.
func (m *Mapped) Document() (*goddag.Document, error) {
	m.docOnce.Do(func() { m.doc, m.docErr = m.buildDoc() })
	return m.doc, m.docErr
}

func (m *Mapped) buildDoc() (*goddag.Document, error) {
	if err := m.checkCRC(secMeta); err != nil {
		return nil, err
	}
	meta := m.sec(secMeta)
	if len(meta) < 7*4 || len(meta)%4 != 0 {
		return nil, fmt.Errorf("store: meta section malformed (%d bytes)", len(meta))
	}
	u := func(i int) int { return int(binary.LittleEndian.Uint32(meta[4*i:])) }
	m.contentLen = u(0)
	m.rootTagID = binary.LittleEndian.Uint32(meta[4:8])
	m.nhier, m.nelems, m.nattrs, m.nleaves, m.nstrings = u(2), u(3), u(4), u(5), u(6)
	if len(meta) != 4*(7+2*m.nhier) {
		return nil, fmt.Errorf("store: meta section length %d inconsistent with %d hierarchies", len(meta), m.nhier)
	}
	const maxN = 1 << 30
	if m.contentLen >= maxN || m.nelems >= maxN/4 || m.nattrs >= maxN || m.nleaves >= maxN || m.nstrings >= maxN {
		return nil, fmt.Errorf("store: implausible meta counts")
	}
	sum := 0
	m.hierIDs = make([]uint32, m.nhier)
	m.hierCounts = make([]int, m.nhier)
	for i := 0; i < m.nhier; i++ {
		m.hierIDs[i] = binary.LittleEndian.Uint32(meta[4*(7+2*i):])
		m.hierCounts[i] = u(7 + 2*i + 1)
		if m.hierCounts[i] < 0 || m.hierCounts[i] > m.nelems {
			return nil, fmt.Errorf("store: hierarchy %d count out of range", i)
		}
		sum += m.hierCounts[i]
	}
	if sum != m.nelems {
		return nil, fmt.Errorf("store: hierarchy counts sum %d != %d elements", sum, m.nelems)
	}
	// O(1) length cross-checks: every later section read is in-bounds by
	// construction after these.
	for _, c := range []struct {
		id   int
		want int
	}{
		{secContent, m.contentLen},
		{secStrOff, 4 * (m.nstrings + 1)},
		{secTag, 4 * m.nelems}, {secStart, 4 * m.nelems}, {secEnd, 4 * m.nelems},
		{secParent, 4 * m.nelems}, {secPreEnd, 4 * m.nelems}, {secOrd, 4 * m.nelems},
		{secAttrOff, 4 * (m.nelems + 1)},
		{secAttrName, 4 * m.nattrs}, {secAttrVal, 4 * m.nattrs},
		{secCuts, 4 * m.nleaves}, {secLeafOrd, 4 * m.nleaves},
		{secByOrd, 4 * (1 + m.nelems + m.nleaves)},
		{secOrder, 4 * m.nelems},
		{secSpanMax, 4 * 4 * m.nelems},
	} {
		if m.secs[c.id].n != c.want {
			return nil, fmt.Errorf("store: section %d length %d, want %d", c.id, m.secs[c.id].n, c.want)
		}
	}
	if m.secs[secBuckets].n < 4 || m.secs[secBuckets].n%4 != 0 {
		return nil, fmt.Errorf("store: buckets section malformed")
	}
	if err := m.checkCRC(secContent); err != nil {
		return nil, err
	}
	rootTag, err := m.str(m.rootTagID)
	if err != nil {
		return nil, err
	}
	names := make([]string, m.nhier)
	seen := make(map[string]bool, m.nhier)
	for i, id := range m.hierIDs {
		if names[i], err = m.str(id); err != nil {
			return nil, err
		}
		if names[i] == "" || seen[names[i]] {
			return nil, fmt.Errorf("store: empty or duplicate hierarchy name %q", names[i])
		}
		seen[names[i]] = true
	}
	return goddag.FromView(&goddag.DocView{
		RootTag:     rootTag,
		Content:     bstr(m.sec(secContent)),
		HierNames:   names,
		Materialize: m.columns,
		Keep:        m,
	}), nil
}

// str resolves one string-table entry with individual bounds checks —
// used before the table as a whole has been validated (root and
// hierarchy names at Document() time).
func (m *Mapped) str(id uint32) (string, error) {
	if int(id) >= m.nstrings {
		return "", fmt.Errorf("store: string id %d out of range [0,%d)", id, m.nstrings)
	}
	offs := m.sec(secStrOff)
	lo := binary.LittleEndian.Uint32(offs[4*id:])
	hi := binary.LittleEndian.Uint32(offs[4*id+4:])
	blob := m.sec(secStrBlob)
	if lo > hi || hi > uint32(len(blob)) {
		return "", fmt.Errorf("store: string %d bounds [%d,%d) invalid", id, lo, hi)
	}
	return bstr(blob[lo:hi]), nil
}

// columns verifies the remaining section checksums, validates the
// element columns structurally (every index in range, orders and
// prefixes monotonic, ordinal tables mutually consistent), and returns
// the columnar image, aliasing the mapping wherever layout permits.
// Called once per document, on its first structural access.
func (m *Mapped) columns() (*goddag.Columns, error) {
	for id := secStrBlob; id <= secBuckets; id++ {
		if err := m.checkCRC(id); err != nil {
			return nil, err
		}
	}
	n, nl, nattrs, nstr := m.nelems, m.nleaves, m.nattrs, m.nstrings

	strOff, _ := u32view(m.sec(secStrOff))
	blob := m.sec(secStrBlob)
	if strOff[0] != 0 || int(strOff[nstr]) != len(blob) {
		return nil, fmt.Errorf("store: string table does not tile its blob")
	}
	for i := 0; i < nstr; i++ {
		if strOff[i] > strOff[i+1] {
			return nil, fmt.Errorf("store: string offsets not monotonic at %d", i)
		}
	}
	strs := make([]string, nstr)
	for i := range strs {
		strs[i] = bstr(blob[strOff[i]:strOff[i+1]])
	}

	tag, _ := u32view(m.sec(secTag))
	start, _ := u32view(m.sec(secStart))
	end, _ := u32view(m.sec(secEnd))
	parent, _ := i32view(m.sec(secParent))
	preEnd, _ := u32view(m.sec(secPreEnd))
	ord, _ := u32view(m.sec(secOrd))
	attrOff, _ := u32view(m.sec(secAttrOff))
	attrName, _ := u32view(m.sec(secAttrName))
	attrVal, _ := u32view(m.sec(secAttrVal))
	cuts, _ := u32view(m.sec(secCuts))
	order, _ := u32view(m.sec(secOrder))
	spanMax, _ := i32view(m.sec(secSpanMax))
	leafOrd, leafAliased := i32view(m.sec(secLeafOrd))
	byOrd, byAliased := i32view(m.sec(secByOrd))

	nord := 1 + n + nl
	cl := uint32(m.contentLen)
	base := 0
	for _, cnt := range m.hierCounts {
		for i := 0; i < cnt; i++ {
			g := base + i
			if tag[g] >= uint32(nstr) {
				return nil, fmt.Errorf("store: element %d tag id out of range", g)
			}
			if start[g] > end[g] || end[g] > cl {
				return nil, fmt.Errorf("store: element %d span [%d,%d) out of range", g, start[g], end[g])
			}
			if pe := preEnd[g]; int(pe) > cnt || pe <= uint32(i) {
				return nil, fmt.Errorf("store: element %d pre-order end %d out of range", g, pe)
			}
			if p := parent[g]; p >= 0 {
				if int(p) < base || int(p) >= g {
					return nil, fmt.Errorf("store: element %d parent %d outside its hierarchy prefix", g, p)
				}
				if preEnd[g] > preEnd[p] || uint32(i) >= preEnd[p] {
					return nil, fmt.Errorf("store: element %d escapes parent %d subtree", g, p)
				}
			}
			if o := ord[g]; o == 0 || o >= uint32(nord) {
				return nil, fmt.Errorf("store: element %d ordinal %d out of range", g, o)
			}
		}
		base += cnt
	}
	if attrOff[0] != 0 || attrOff[n] != uint32(nattrs) {
		return nil, fmt.Errorf("store: attribute prefix does not cover the pool")
	}
	for g := 0; g < n; g++ {
		if attrOff[g] > attrOff[g+1] {
			return nil, fmt.Errorf("store: attribute prefix not monotonic at %d", g)
		}
	}
	for j := 0; j < nattrs; j++ {
		if attrName[j] >= uint32(nstr) || attrVal[j] >= uint32(nstr) {
			return nil, fmt.Errorf("store: attribute %d string id out of range", j)
		}
	}
	if m.contentLen > 0 && nl == 0 {
		return nil, fmt.Errorf("store: non-empty content with no leaves")
	}
	if m.contentLen == 0 && nl != 0 {
		return nil, fmt.Errorf("store: empty content with %d leaves", nl)
	}
	for j := 0; j < nl; j++ {
		if cuts[j] >= cl || (j == 0 && cuts[j] != 0) || (j > 0 && cuts[j] <= cuts[j-1]) {
			return nil, fmt.Errorf("store: leaf cut %d invalid", j)
		}
	}
	// Ordinal tables: byOrd, leafOrd, ord, and order must describe one
	// consistent numbering, so decode/encode round-trips are identity.
	if byOrd[0] != 0 {
		return nil, fmt.Errorf("store: ordinal 0 is not the root")
	}
	seen := make([]bool, n)
	for k := 0; k < n; k++ {
		g := order[k]
		if g >= uint32(n) || seen[g] {
			return nil, fmt.Errorf("store: document order is not a permutation at %d", k)
		}
		seen[g] = true
		if byOrd[ord[g]] != int32(k+1) {
			return nil, fmt.Errorf("store: ordinal tables disagree on element %d", g)
		}
	}
	for j := 0; j < nl; j++ {
		lo := leafOrd[j]
		if lo <= 0 || int(lo) >= nord || byOrd[lo] != int32(-(j + 1)) {
			return nil, fmt.Errorf("store: ordinal tables disagree on leaf %d", j)
		}
	}

	bk := m.sec(secBuckets)
	bu, _ := u32view(bk)
	nb := int(bu[0])
	if nb < 0 || 1+2*nb > len(bu) {
		return nil, fmt.Errorf("store: bucket directory truncated")
	}
	total := 0
	for i := 0; i < nb; i++ {
		c := int(bu[2+2*i])
		if c < 0 || c > n-total {
			return nil, fmt.Errorf("store: bucket %d count invalid", i)
		}
		total += c
	}
	if total != n || 1+2*nb+total != len(bu) {
		return nil, fmt.Errorf("store: buckets cover %d of %d elements", total, n)
	}
	buckets := make([]goddag.Bucket, nb)
	pos := bu[1+2*nb:]
	off := 0
	for i := 0; i < nb; i++ {
		tid, c := bu[1+2*i], int(bu[2+2*i])
		if tid >= uint32(nstr) {
			return nil, fmt.Errorf("store: bucket %d tag id out of range", i)
		}
		ps := pos[off : off+c]
		for j, p := range ps {
			if p >= uint32(n) || (j > 0 && p <= ps[j-1]) {
				return nil, fmt.Errorf("store: bucket %d positions not ascending in range", i)
			}
		}
		buckets[i] = goddag.Bucket{Tag: tid, Pos: ps}
		off += c
	}

	hiers := make([]goddag.HierColumns, m.nhier)
	for i := range hiers {
		name, err := m.str(m.hierIDs[i])
		if err != nil {
			return nil, err
		}
		hiers[i] = goddag.HierColumns{Name: name, N: m.hierCounts[i]}
	}
	return &goddag.Columns{
		Strings: strs, Hiers: hiers,
		Tag: tag, Start: start, End: end, Parent: parent, PreEnd: preEnd, Ord: ord,
		AttrOff: attrOff, AttrName: attrName, AttrVal: attrVal,
		Cuts: cuts, LeafOrd: leafOrd, ByOrd: byOrd, Order: order,
		SpanMax: spanMax, Buckets: buckets,
		Aliased: leafAliased || byAliased,
	}, nil
}

// decodeV3Bytes fully decodes a v3 image into a (heap-buffer-backed)
// document, forcing materialization so any damage surfaces as an error
// rather than a parked ViewErr. Decode's v3 branch.
func decodeV3Bytes(data []byte) (*goddag.Document, error) {
	m, err := OpenMappedBytes(data)
	if err != nil {
		return nil, err
	}
	doc, err := m.Document()
	if err != nil {
		return nil, err
	}
	doc.Warm()
	if err := doc.ViewErr(); err != nil {
		return nil, err
	}
	return doc, nil
}

// Validate eagerly runs the full validation the lazy path defers:
// every section checksum plus the structural checks. Used by fuzzing
// and by tools that must reject a damaged file before serving it.
func (m *Mapped) Validate() error {
	doc, err := m.Document()
	if err != nil {
		return err
	}
	doc.Warm()
	return doc.ViewErr()
}

// nativeLE reports whether the running architecture is little-endian —
// the condition (with 4-byte alignment) for aliasing the file's column
// arrays instead of copying them.
var nativeLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// bstr views a byte slice as a string without copying. The bytes alias
// the mapping and must stay immutable and alive — guaranteed by the
// PROT_READ mapping and the document's keepalive.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// u32view reinterprets little-endian bytes as a uint32 slice, aliasing
// when alignment and byte order allow and copying otherwise. The
// second result reports aliasing.
func u32view(b []byte) ([]uint32, bool) {
	nv := len(b) / 4
	if nv == 0 {
		return nil, false
	}
	if nativeLE && uintptr(unsafe.Pointer(unsafe.SliceData(b)))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(b))), nv), true
	}
	out := make([]uint32, nv)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out, false
}

// i32view is u32view for int32 columns.
func i32view(b []byte) ([]int32, bool) {
	nv := len(b) / 4
	if nv == 0 {
		return nil, false
	}
	if nativeLE && uintptr(unsafe.Pointer(unsafe.SliceData(b)))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), nv), true
	}
	out := make([]int32, nv)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, false
}
