// Write-ahead log for edit transactions. Each catalogued document gets
// one append-only segment (<id>.wal) next to its .gdag file: the edit
// path appends the serialized op batch (the HTTP edit wire format,
// package editor's Batch) and fsyncs it BEFORE the batch is applied and
// the document's indexes repaired, so a crash anywhere between commit
// and the next successful atomic save loses nothing — reopening replays
// the surviving tail through the transaction API. A successful save
// resets the log to empty; the log therefore only grows while saves
// fail.
//
// Segment layout:
//
//	header:  magic "GWAL", version byte
//	records: kind byte ('O' op batch JSON, 'S' full-document snapshot),
//	         pre-state fingerprint (4 bytes BE, see Fingerprint),
//	         payload length (uvarint), payload,
//	         CRC-32 (Castagnoli) of everything since the kind byte (4 bytes BE)
//
// Records are self-checking: replay scans forward and stops at the
// first record whose frame is incomplete or whose checksum fails — by
// construction (appends are sequential and fsynced one record at a
// time) damage can only be a tail, which OpenWAL truncates away. That
// is exactly the state a power cut mid-append leaves behind.
//
// The pre-state fingerprint makes replay exactly-once: an op-batch
// record only applies when the document it is replayed onto has the
// fingerprint the batch was logged against. If a crash lands in the
// small window where the save's rename committed but the log reset did
// not (or the rename's directory sync failed), the stale records'
// fingerprints no longer match the saved base and replay skips them
// instead of applying the batch twice. Snapshot records carry the
// post-state document wholesale and need no fingerprint.
//
// A WAL is single-writer: the catalog serializes appends under each
// document's write lock. Appends that fail part-way rewind the file to
// the last durable record boundary so the segment stays well-formed.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/faultfs"
	"repro/internal/goddag"
)

// WAL segment format constants.
const (
	walMagic   = "GWAL"
	walVersion = 1

	// WALHeaderLen is the byte length of the segment header; an empty
	// (fully truncated) log is exactly this long.
	WALHeaderLen = 5
)

// RecordKind discriminates WAL records.
type RecordKind byte

// The record kinds.
const (
	// RecordOps is a serialized editor op batch (editor.Batch JSON, the
	// same bytes the HTTP edit endpoint accepts), logged before the
	// batch is applied. Replay re-applies it through the transaction
	// API when the pre-state fingerprint matches.
	RecordOps RecordKind = 'O'
	// RecordSnapshot is a full document in the .gdag encoding, logged
	// after an edit whose effect is not expressible as an op batch
	// (undo, redo, arbitrary Update closures). Replay replaces the
	// document wholesale, which is naturally idempotent.
	RecordSnapshot RecordKind = 'S'
)

// Record is one recovered WAL entry.
type Record struct {
	Kind RecordKind
	// Pre is the fingerprint of the document state the record was
	// logged against (RecordOps only).
	Pre uint32
	// Payload is the record body: editor.Batch JSON or .gdag bytes.
	Payload []byte
}

// WAL is one open write-ahead log segment.
type WAL struct {
	fsys faultfs.FS
	path string
	f    faultfs.File
	size int64 // header + complete durable records
}

// maxWALRecord bounds a single record payload against corrupted length
// fields; a larger length is treated as a torn tail.
const maxWALRecord = 1 << 30

// OpenWAL opens (creating if necessary) the write-ahead log at path and
// scans it: the surviving complete records are returned for replay and
// any torn tail is truncated away, so subsequent appends extend a
// well-formed segment. A nil record slice means the log was empty.
func OpenWAL(fsys faultfs.FS, path string) (*WAL, []Record, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: wal %s: %w", path, err)
	}
	w := &WAL{fsys: fsys, path: path, f: f}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: wal %s: %w", path, err)
	}
	if len(data) < WALHeaderLen {
		// Fresh (or torn-at-birth) segment: write the header.
		if err := w.reinit(); err != nil {
			f.Close()
			return nil, nil, err
		}
		return w, nil, nil
	}
	if string(data[:4]) != walMagic || data[4] != walVersion {
		f.Close()
		return nil, nil, fmt.Errorf("store: wal %s: bad header %q version %d", path, data[:4], data[4])
	}
	recs, good := ScanWALRecords(data[WALHeaderLen:])
	w.size = WALHeaderLen + good
	if int64(len(data)) > w.size {
		// Torn tail from a crash mid-append: cut it so the segment ends
		// on a record boundary again.
		if err := fsys.Truncate(path, w.size); err != nil {
			f.Close()
			return nil, recs, fmt.Errorf("store: wal %s: truncating torn tail: %w", path, err)
		}
	}
	return w, recs, nil
}

// ScanWALRecords parses the record region of a WAL segment (everything
// after the header), returning the complete records and the byte length
// of the valid prefix. The scan stops at the first incomplete or
// checksum-failing record — appends are sequential, so any damage is a
// tail. It never fails: corrupt input just shortens the valid prefix.
func ScanWALRecords(data []byte) ([]Record, int64) {
	var recs []Record
	off := int64(0)
	for off < int64(len(data)) {
		rest := data[off:]
		// kind(1) + pre(4) + len(>=1) + crc(4)
		if len(rest) < 10 {
			break
		}
		kind := RecordKind(rest[0])
		if kind != RecordOps && kind != RecordSnapshot {
			break
		}
		pre := binary.BigEndian.Uint32(rest[1:5])
		n, ln := binary.Uvarint(rest[5:])
		if ln <= 0 || n > maxWALRecord {
			break
		}
		body := 1 + 4 + ln + int(n)
		if int64(body)+4 > int64(len(rest)) {
			break
		}
		payload := rest[5+ln : body]
		want := binary.BigEndian.Uint32(rest[body : body+4])
		if crc32.Checksum(rest[:body], crcTable) != want {
			break
		}
		recs = append(recs, Record{Kind: kind, Pre: pre, Payload: payload})
		off += int64(body) + 4
	}
	return recs, off
}

// appendFrame appends one framed record to dst: kind, pre-state
// fingerprint, uvarint payload length, payload, CRC over all of it.
func appendFrame(dst []byte, kind RecordKind, pre uint32, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, byte(kind))
	dst = binary.BigEndian.AppendUint32(dst, pre)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.Checksum(dst[start:], crcTable))
}

// reinit truncates the segment to empty and writes a fresh header.
func (w *WAL) reinit() error {
	if err := w.fsys.Truncate(w.path, 0); err != nil {
		return fmt.Errorf("store: wal %s: %w", w.path, err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: wal %s: %w", w.path, err)
	}
	hdr := append([]byte(walMagic), walVersion)
	if _, err := w.f.Write(hdr); err != nil {
		return fmt.Errorf("store: wal %s: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal %s: %w", w.path, err)
	}
	w.size = WALHeaderLen
	return nil
}

// Size returns the durable length of the segment. Capture it before an
// Append to Rewind a record whose transaction was later vetoed.
func (w *WAL) Size() int64 { return w.size }

// Empty reports whether the segment holds no records.
func (w *WAL) Empty() bool { return w.size <= WALHeaderLen }

// Path returns the segment's file path.
func (w *WAL) Path() string { return w.path }

// Append frames, writes, and fsyncs one record. On failure it rewinds
// the file to the previous durable boundary (best-effort) and the
// caller must treat the record as NOT logged: after a write or sync
// error the on-disk state is indeterminate until the rewind, which
// restores it. Only a successful Append makes the record durable — it
// is the commit point of the logged-edit path.
func (w *WAL) Append(kind RecordKind, pre uint32, payload []byte) error {
	frame := appendFrame(make([]byte, 0, 1+4+binary.MaxVarintLen64+len(payload)+4), kind, pre, payload)
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if _, err := w.f.Write(frame); err != nil {
		w.rewind()
		return fmt.Errorf("store: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.rewind()
		return fmt.Errorf("store: wal append: %w", err)
	}
	w.size += int64(len(frame))
	return nil
}

// rewind truncates back to the durable size after a failed append,
// best-effort: if the truncate itself fails, the tail is torn and the
// next OpenWAL's scan will cut it (the record's checksum only went to
// disk if the full frame did — and a complete frame is re-skipped at
// replay only if its pre-state fingerprint still matches, which an
// error-reported batch legitimately does: re-applying it is the
// documented at-least-once outcome of an indeterminate append).
func (w *WAL) rewind() {
	_ = w.fsys.Truncate(w.path, w.size)
}

// Rewind truncates the segment back to size (a value previously
// returned by Size), dropping records appended after it — used to
// unlog a batch whose transaction was vetoed after its intent was
// appended.
func (w *WAL) Rewind(size int64) error {
	if size < WALHeaderLen || size > w.size {
		return fmt.Errorf("store: wal rewind to %d outside [%d,%d]", size, WALHeaderLen, w.size)
	}
	if err := w.fsys.Truncate(w.path, size); err != nil {
		return fmt.Errorf("store: wal rewind: %w", err)
	}
	w.size = size
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal rewind: %w", err)
	}
	return nil
}

// Reset empties the segment after a successful save: the .gdag file now
// carries the state, so the log's records are spent.
func (w *WAL) Reset() error {
	if err := w.Rewind(WALHeaderLen); err != nil {
		return err
	}
	return nil
}

// Close releases the file handle. The segment stays on disk for the
// next open.
func (w *WAL) Close() error { return w.f.Close() }

// Fingerprint summarizes a document's exact persisted state: the
// CRC-32 (Castagnoli) of its deterministic Encode stream. The WAL
// stamps each op-batch record with the fingerprint of the state the
// batch was logged against, so replay is exactly-once (see the package
// comment). Cost is one encode pass with no I/O.
func Fingerprint(doc *goddag.Document) uint32 {
	h := crc32.New(crcTable)
	// Encode to the hash alone: bufio over a hash cannot fail.
	_ = Encode(h, doc)
	return h.Sum32()
}
