package store

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/corpus"
	"repro/internal/document"
	"repro/internal/goddag"
)

func roundTrip(t *testing.T, doc *goddag.Document) *goddag.Document {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestRoundTripFig1(t *testing.T) {
	doc, err := corpus.Fig1Document()
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, doc)
	if err := back.Check(); err != nil {
		t.Fatal(err)
	}
	if back.Stats() != doc.Stats() {
		t.Errorf("stats %+v != %+v", back.Stats(), doc.Stats())
	}
	if goddag.Dump(back) != goddag.Dump(doc) {
		t.Error("dumps differ after round trip")
	}
}

func TestRoundTripSynthetic(t *testing.T) {
	doc, err := corpus.Generate(corpus.DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, doc)
	if back.Stats() != doc.Stats() {
		t.Errorf("stats differ: %+v vs %+v", back.Stats(), doc.Stats())
	}
	// Attribute fidelity, element by element.
	a, b := doc.Elements(), back.Elements()
	if len(a) != len(b) {
		t.Fatalf("element counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name() != b[i].Name() || a[i].Span() != b[i].Span() {
			t.Fatalf("element %d: %v vs %v", i, a[i], b[i])
		}
		aa, ba := a[i].Attrs(), b[i].Attrs()
		if len(aa) != len(ba) {
			t.Fatalf("element %d attr count", i)
		}
		for j := range aa {
			if aa[j] != ba[j] {
				t.Fatalf("element %d attr %d: %v vs %v", i, j, aa[j], ba[j])
			}
		}
	}
}

func TestRoundTripEmptyDocument(t *testing.T) {
	doc := goddag.New("r", "")
	back := roundTrip(t, doc)
	if back.RootTag() != "r" || back.Content().Len() != 0 {
		t.Errorf("empty doc round trip: %q %d", back.RootTag(), back.Content().Len())
	}
}

func TestRoundTripUnicode(t *testing.T) {
	doc := goddag.New("r", "ƿæs þæt 日本語")
	h := doc.AddHierarchy("h")
	// "ƿæs" spans bytes [0,5): ƿ and æ are 2 bytes each.
	if _, err := doc.InsertElement(h, "w", []goddag.Attr{{Name: "x", Value: "þ\"<&"}}, spanOf(0, 5)); err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, doc)
	if back.Content().String() != doc.Content().String() {
		t.Errorf("content %q", back.Content().String())
	}
	el := back.Hierarchy("h").Elements()[0]
	if v, _ := el.Attr("x"); v != "þ\"<&" {
		t.Errorf("attr = %q", v)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	doc, err := corpus.Fig1Document()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one content byte mid-file.
	data[len(data)/2] ^= 0x40
	if _, err := Decode(bytes.NewReader(data)); err == nil {
		t.Error("corruption not detected")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE....."),
		"truncated":   []byte("GDAG"),
		"bad version": append([]byte("GDAG"), 99),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDecodeTruncatedBody(t *testing.T) {
	doc, _ := corpus.Fig1Document()
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{6, len(data) / 2, len(data) - 2} {
		if _, err := Decode(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestSizeIsCompact(t *testing.T) {
	doc, err := corpus.Generate(corpus.DefaultConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	// The binary format should undercut the smallest XML representation
	// (fragmentation, ~8x content) by a wide margin.
	contentLen := len(doc.Content().String())
	if buf.Len() > 6*contentLen {
		t.Errorf("binary size %d > 6x content %d", buf.Len(), contentLen)
	}
}

func TestEncodeWriterError(t *testing.T) {
	doc, _ := corpus.Fig1Document()
	if err := Encode(failWriter{}, doc); err == nil {
		t.Error("writer failure should surface")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errFail }

var errFail = errors.New("write failed")

func spanOf(a, b int) document.Span { return document.NewSpan(a, b) }
