package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"repro/internal/corpus"
	"repro/internal/document"
	"repro/internal/goddag"
)

func roundTrip(t *testing.T, doc *goddag.Document) *goddag.Document {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestRoundTripFig1(t *testing.T) {
	doc, err := corpus.Fig1Document()
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, doc)
	if err := back.Check(); err != nil {
		t.Fatal(err)
	}
	if back.Stats() != doc.Stats() {
		t.Errorf("stats %+v != %+v", back.Stats(), doc.Stats())
	}
	if goddag.Dump(back) != goddag.Dump(doc) {
		t.Error("dumps differ after round trip")
	}
}

func TestRoundTripSynthetic(t *testing.T) {
	doc, err := corpus.Generate(corpus.DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, doc)
	if back.Stats() != doc.Stats() {
		t.Errorf("stats differ: %+v vs %+v", back.Stats(), doc.Stats())
	}
	// Attribute fidelity, element by element.
	a, b := doc.Elements(), back.Elements()
	if len(a) != len(b) {
		t.Fatalf("element counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name() != b[i].Name() || a[i].Span() != b[i].Span() {
			t.Fatalf("element %d: %v vs %v", i, a[i], b[i])
		}
		aa, ba := a[i].Attrs(), b[i].Attrs()
		if len(aa) != len(ba) {
			t.Fatalf("element %d attr count", i)
		}
		for j := range aa {
			if aa[j] != ba[j] {
				t.Fatalf("element %d attr %d: %v vs %v", i, j, aa[j], ba[j])
			}
		}
	}
}

func TestRoundTripEmptyDocument(t *testing.T) {
	doc := goddag.New("r", "")
	back := roundTrip(t, doc)
	if back.RootTag() != "r" || back.Content().Len() != 0 {
		t.Errorf("empty doc round trip: %q %d", back.RootTag(), back.Content().Len())
	}
}

func TestRoundTripUnicode(t *testing.T) {
	doc := goddag.New("r", "ƿæs þæt 日本語")
	h := doc.AddHierarchy("h")
	// "ƿæs" spans bytes [0,5): ƿ and æ are 2 bytes each.
	if _, err := doc.InsertElement(h, "w", []goddag.Attr{{Name: "x", Value: "þ\"<&"}}, spanOf(0, 5)); err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, doc)
	if back.Content().String() != doc.Content().String() {
		t.Errorf("content %q", back.Content().String())
	}
	el := back.Hierarchy("h").Elements()[0]
	if v, _ := el.Attr("x"); v != "þ\"<&" {
		t.Errorf("attr = %q", v)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	doc, err := corpus.Fig1Document()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one content byte mid-file.
	data[len(data)/2] ^= 0x40
	if _, err := Decode(bytes.NewReader(data)); err == nil {
		t.Error("corruption not detected")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE....."),
		"truncated":   []byte("GDAG"),
		"bad version": append([]byte("GDAG"), 99),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDecodeTruncatedBody(t *testing.T) {
	doc, _ := corpus.Fig1Document()
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{6, len(data) / 2, len(data) - 2} {
		if _, err := Decode(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestSizeIsCompact(t *testing.T) {
	doc, err := corpus.Generate(corpus.DefaultConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	// The binary format should undercut the smallest XML representation
	// (fragmentation, ~8x content) by a wide margin.
	contentLen := len(doc.Content().String())
	if buf.Len() > 6*contentLen {
		t.Errorf("binary size %d > 6x content %d", buf.Len(), contentLen)
	}
}

func TestEncodeWriterError(t *testing.T) {
	doc, _ := corpus.Fig1Document()
	if err := Encode(failWriter{}, doc); err == nil {
		t.Error("writer failure should surface")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errFail }

var errFail = errors.New("write failed")

func spanOf(a, b int) document.Span { return document.NewSpan(a, b) }

// TestDecodeBulkEqualsReplay holds the BulkBuilder decode path against the
// order-insensitive InsertElement replay across the corpus grid: both
// builders must produce byte-identical structures from the same records.
func TestDecodeBulkEqualsReplay(t *testing.T) {
	for _, words := range []int{60, 300} {
		for _, h := range []int{1, 2, 4, 8} {
			for _, density := range []float64{0.1, 0.5, 0.9} {
				for _, vocab := range [][]string{nil, corpus.MultibyteVocabulary} {
					cfg := corpus.DefaultConfig(words)
					cfg.Hierarchies = h
					cfg.OverlapDensity = density
					cfg.Vocabulary = vocab
					doc, err := corpus.Generate(cfg)
					if err != nil {
						t.Fatal(err)
					}
					var buf bytes.Buffer
					if err := Encode(&buf, doc); err != nil {
						t.Fatal(err)
					}
					data := buf.Bytes()

					bulkDoc, records, nattrs, err := readBody(bytes.NewReader(data))
					if err != nil {
						t.Fatal(err)
					}
					if !recordsOrdered(records) {
						t.Fatalf("words=%d h=%d d=%.1f: Encode emitted out-of-order records", words, h, density)
					}
					if err := buildBulk(bulkDoc, records, nattrs); err != nil {
						t.Fatal(err)
					}
					replayDoc, records2, _, err := readBody(bytes.NewReader(data))
					if err != nil {
						t.Fatal(err)
					}
					if err := buildReplay(replayDoc, records2); err != nil {
						t.Fatal(err)
					}
					if err := bulkDoc.Check(); err != nil {
						t.Fatalf("words=%d h=%d d=%.1f: bulk decode: %v", words, h, density, err)
					}
					if goddag.Dump(bulkDoc) != goddag.Dump(replayDoc) {
						t.Fatalf("words=%d h=%d d=%.1f multibyte=%v: bulk decode differs from replay decode",
							words, h, density, vocab != nil)
					}
				}
			}
		}
	}
}

// TestDecodeUnorderedFallsBack crafts a file whose elements are stored out
// of document order (Encode never does this) and checks Decode still
// accepts it through the InsertElement fallback.
func TestDecodeUnorderedFallsBack(t *testing.T) {
	var buf bytes.Buffer
	h := crc32.New(crcTable)
	e := &encoder{w: io.MultiWriter(&buf, h)}
	e.raw([]byte(magic))
	e.byte(version)
	e.str("r")
	e.str("swa hwaet swa")
	e.uint(1)      // one hierarchy
	e.str("words") // named words
	e.uint(2)      // two elements, reversed document order
	e.str("w")     // "hwaet" before "swa"
	e.uint(4)
	e.uint(5)
	e.uint(0)
	e.str("w")
	e.uint(0)
	e.uint(3)
	e.uint(0)
	if e.err != nil {
		t.Fatal(e.err)
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], h.Sum32())
	buf.Write(sum[:])

	doc, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Check(); err != nil {
		t.Fatal(err)
	}
	els := doc.Hierarchy("words").Elements()
	if len(els) != 2 || els[0].Span() != spanOf(0, 3) || els[1].Span() != spanOf(4, 9) {
		t.Fatalf("unexpected elements %v", els)
	}
}
