// Package store implements persistent storage for GODDAG documents — the
// framework component the paper reports as "currently underway" (§1:
// "Work on building persistent storage solutions").
//
// Two on-disk formats share the "GDAG" magic and differ in the version
// byte:
//
// Version 3 (written by Save since PR 10; see v3.go and mapped.go) is a
// section-table layout built for open-without-decode. After the header
// comes a directory of {id, length, offset, CRC-32C} entries, a header
// checksum, and 8-byte-aligned little-endian section payloads: the raw
// content bytes, a string table, fixed-stride element columns (tag id,
// span start/end, parent, pre-order interval, ordinal, attribute
// prefix), the partition cuts, and the serialized derived indexes
// (ordinal tables, document order, name buckets, span segment tree).
// OpenMapped* validates only header + directory + checksums on the hot
// metadata, maps the rest, and hands goddag a lazily materializing
// view; Decode on a v3 stream reads it through the same path.
//
// Version 2 is the legacy streaming varint format:
//
//	header:  magic "GDAG", version byte
//	body:    root tag, content, hierarchy count,
//	         per hierarchy: name, element count,
//	         per element (document order): tag, span start/length (varint),
//	         attribute count, attributes (name, value)
//	footer:  CRC-32 (Castagnoli) of everything before it
//
// Strings are length-prefixed (uvarint) UTF-8; integers are uvarints.
// Since version 2, spans are *byte* offsets into the UTF-8 content (the
// GODDAG's native coordinates); version 1 files, whose spans were rune
// offsets, are rejected rather than silently misread.
// Elements are stored in document order, so loading streams them through
// goddag.BulkBuilder — leaf boundaries are pre-cut in one batch and each
// element is placed in O(1) amortized time from per-hierarchy open-element
// stacks, the same bulk path the SACX parser uses. A file whose elements
// are not in document order (never produced by Encode, but accepted for
// compatibility) falls back to the general InsertElement replay; the two
// paths build identical structures.
//
// Encode still writes v2 — the WAL's snapshot records and fingerprints
// are v2 streams, and readers for both stay — while Save/SaveFS write
// v3, so any v2 file migrates to v3 on its next save.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"path/filepath"
	"syscall"

	"repro/internal/document"
	"repro/internal/faultfs"
	"repro/internal/goddag"
)

// magic identifies the file format; version allows evolution.
const (
	magic   = "GDAG"
	version = 2
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Encode writes doc to w in the binary GODDAG format.
func Encode(w io.Writer, doc *goddag.Document) error {
	bw := bufio.NewWriter(w)
	h := crc32.New(crcTable)
	e := &encoder{w: io.MultiWriter(bw, h)}

	e.raw([]byte(magic))
	e.byte(version)
	e.str(doc.RootTag())
	e.str(doc.Content().String())
	hiers := doc.Hierarchies()
	e.uint(uint64(len(hiers)))
	for _, hier := range hiers {
		e.str(hier.Name())
		els := hier.Elements()
		e.uint(uint64(len(els)))
		for _, el := range els {
			e.str(el.Name())
			sp := el.Span()
			e.uint(uint64(sp.Start))
			e.uint(uint64(sp.End - sp.Start))
			attrs := el.Attrs()
			e.uint(uint64(len(attrs)))
			for _, a := range attrs {
				e.str(a.Name)
				e.str(a.Value)
			}
		}
	}
	if e.err != nil {
		return fmt.Errorf("store: encode: %w", e.err)
	}
	// Footer: checksum of everything written so far.
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], h.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return fmt.Errorf("store: encode: %w", err)
	}
	return bw.Flush()
}

// Save writes doc to path atomically in the v3 format: it encodes into
// a temporary file in the target's directory, syncs it, and renames it
// over the target. A crash or encode failure never leaves a partial
// file at path — the durability contract the catalog's save-on-commit
// persistence relies on. Output is deterministic for a given document,
// so saving and reloading reproduces the file byte-identically. Saving
// a document loaded from a v2 file is the v2→v3 migration.
func Save(path string, doc *goddag.Document) error {
	return SaveFS(faultfs.OS, path, doc)
}

// SaveFS is Save running on an injectable filesystem, so tests can
// fail or tear any write, sync, or rename in the sequence. All
// durability-relevant errors propagate, including the directory sync
// that makes the rename itself survive power loss; only errnos that
// mean "this filesystem does not support directory fsync" are
// tolerated (the rename is then as durable as the platform allows).
func SaveFS(fsys faultfs.FS, path string, doc *goddag.Document) error {
	f, err := fsys.CreateTemp(filepath.Dir(path), ".gdag-tmp-*")
	if err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			fsys.Remove(tmp)
		}
	}()
	if err := EncodeV3(f, doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: save: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	tmp = "" // renamed; nothing to clean up
	// Sync the directory so the rename itself is durable: without it a
	// power loss after a successful Save can roll the directory entry
	// back to the old file. Failures are saved state NOT being durable
	// and must be visible to the caller — the WAL keeps the edit
	// replayable exactly because this error is not swallowed.
	dir, err := fsys.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("store: save: sync dir: %w", err)
	}
	if err := dir.Sync(); err != nil && !unsupportedSync(err) {
		dir.Close()
		return fmt.Errorf("store: save: sync dir: %w", err)
	}
	return dir.Close()
}

// unsupportedSync reports errnos meaning the filesystem cannot fsync a
// directory at all (rather than that the sync failed).
func unsupportedSync(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.ENOTTY)
}

// record is one stored element, read back from a file body.
type record struct {
	hier  string
	tag   string
	span  document.Span
	attrs []goddag.Attr
}

// Decode reads a document in the binary GODDAG format, either version:
// v2 streams through the varint reader below; v3 is read whole and
// materialized through the mapped reader with full validation.
func Decode(r io.Reader) (*goddag.Document, error) {
	br := bufio.NewReader(r)
	if head, err := br.Peek(5); err == nil && string(head[:4]) == magic && head[4] == v3Version {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("store: decode: %w", err)
		}
		return decodeV3Bytes(data)
	}
	doc, records, nattrs, err := readBody(br)
	if err != nil {
		return nil, err
	}
	if recordsOrdered(records) {
		if err := buildBulk(doc, records, nattrs); err != nil {
			return nil, err
		}
	} else if err := buildReplay(doc, records); err != nil {
		return nil, err
	}
	return doc, nil
}

// readBody reads and checksums the whole file, returning the empty
// document (content + hierarchies registered) and the element records
// still to be inserted, plus the total attribute count for arena sizing.
func readBody(r io.Reader) (*goddag.Document, []record, int, error) {
	h := crc32.New(crcTable)
	d := &decoder{r: bufio.NewReader(r), h: h}

	head := d.raw(4)
	if d.err == nil && string(head) != magic {
		return nil, nil, 0, fmt.Errorf("store: bad magic %q", head)
	}
	if v := d.byte(); d.err == nil && v != version {
		return nil, nil, 0, fmt.Errorf("store: unsupported version %d", v)
	}
	rootTag := d.str()
	content := d.str()
	if d.err != nil {
		return nil, nil, 0, fmt.Errorf("store: decode: %w", d.err)
	}
	doc := goddag.New(rootTag, content)

	var records []record
	nattrs := 0
	nh := d.uint()
	for i := uint64(0); i < nh && d.err == nil; i++ {
		name := d.str()
		doc.AddHierarchy(name)
		ne := d.uint()
		for j := uint64(0); j < ne && d.err == nil; j++ {
			tag := d.str()
			start := d.uint()
			length := d.uint()
			na := d.uint()
			var attrs []goddag.Attr
			for k := uint64(0); k < na && d.err == nil; k++ {
				an := d.str()
				av := d.str()
				attrs = append(attrs, goddag.Attr{Name: an, Value: av})
			}
			nattrs += len(attrs)
			records = append(records, record{
				hier: name, tag: tag,
				span:  document.NewSpan(int(start), int(start+length)),
				attrs: attrs,
			})
		}
	}
	if d.err != nil {
		return nil, nil, 0, fmt.Errorf("store: decode: %w", d.err)
	}
	// Verify the checksum before mutating further: the footer is read
	// outside the hash.
	want := h.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(d.r, sum[:]); err != nil {
		return nil, nil, 0, fmt.Errorf("store: decode: missing checksum: %w", err)
	}
	if got := binary.BigEndian.Uint32(sum[:]); got != want {
		return nil, nil, 0, fmt.Errorf("store: checksum mismatch: file %08x, computed %08x", got, want)
	}
	for _, rec := range records {
		if rec.span.End > doc.Content().Len() {
			return nil, nil, 0, fmt.Errorf("store: element %s span %v exceeds content length %d",
				rec.tag, rec.span, doc.Content().Len())
		}
	}
	return doc, records, nattrs, nil
}

// recordsOrdered reports whether each hierarchy's records arrive in
// document order (CompareSpans non-decreasing) — the BulkBuilder
// precondition, and an invariant of every Encode-produced file.
func recordsOrdered(records []record) bool {
	last := make(map[string]document.Span, 4)
	for _, rec := range records {
		if prev, ok := last[rec.hier]; ok && document.CompareSpans(prev, rec.span) > 0 {
			return false
		}
		last[rec.hier] = rec.span
	}
	return true
}

// cutBorders re-establishes all leaf boundaries in one batch.
func cutBorders(doc *goddag.Document, records []record) {
	cuts := make([]int, 0, 2*len(records))
	for _, rec := range records {
		cuts = append(cuts, rec.span.Start, rec.span.End)
	}
	doc.Partition().CutAll(cuts)
}

// buildBulk streams document-ordered records through goddag.BulkBuilder:
// borders are pre-cut in one batch and each element is placed in O(1)
// amortized time, the same fast path sacx.Build uses for cold parses.
func buildBulk(doc *goddag.Document, records []record, nattrs int) error {
	cutBorders(doc, records)
	bulk := doc.BulkLoad()
	bulk.Grow(len(records), nattrs)
	bulk.Precut()
	for _, rec := range records {
		hier := doc.Hierarchy(rec.hier)
		if _, err := bulk.Append(hier, rec.tag, rec.attrs, rec.span); err != nil {
			return fmt.Errorf("store: decode: %w", err)
		}
	}
	return nil
}

// buildReplay inserts records one by one through the order-insensitive
// InsertElement path. It is the fallback for files whose elements are not
// in document order and the reference implementation the differential
// tests hold buildBulk against.
func buildReplay(doc *goddag.Document, records []record) error {
	cutBorders(doc, records)
	for _, rec := range records {
		hier := doc.Hierarchy(rec.hier)
		if _, err := doc.InsertElement(hier, rec.tag, rec.attrs, rec.span); err != nil {
			return fmt.Errorf("store: decode: %w", err)
		}
	}
	return nil
}

// encoder writes primitives, remembering the first error.
type encoder struct {
	w   io.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *encoder) raw(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *encoder) byte(b byte) { e.raw([]byte{b}) }

func (e *encoder) uint(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.raw(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.uint(uint64(len(s)))
	e.raw([]byte(s))
}

// decoder reads primitives, hashing everything it consumes.
type decoder struct {
	r   *bufio.Reader
	h   hash.Hash32
	err error
}

func (d *decoder) raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	// Read in bounded chunks so a corrupted length field cannot allocate
	// n bytes up front: memory grows only with data actually present in
	// the input, and a truncated file fails with ErrUnexpectedEOF after
	// at most one chunk of overshoot.
	const chunk = 64 << 10
	if n <= chunk {
		b := make([]byte, n)
		if _, err := io.ReadFull(d.r, b); err != nil {
			d.err = err
			return nil
		}
		d.h.Write(b)
		return b
	}
	b := make([]byte, 0, chunk)
	for len(b) < n {
		m := n - len(b)
		if m > chunk {
			m = chunk
		}
		start := len(b)
		b = append(b, make([]byte, m)...)
		if _, err := io.ReadFull(d.r, b[start:]); err != nil {
			d.err = err
			return nil
		}
	}
	d.h.Write(b)
	return b
}

func (d *decoder) byte() byte {
	b := d.raw(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(hashingByteReader{d})
	if err != nil {
		d.err = err
		return 0
	}
	return v
}

const maxString = 1 << 30 // sanity bound against corrupted lengths

func (d *decoder) str() string {
	n := d.uint()
	if d.err != nil {
		return ""
	}
	if n > maxString {
		d.err = fmt.Errorf("string length %d exceeds limit", n)
		return ""
	}
	return string(d.raw(int(n)))
}

// hashingByteReader feeds single bytes to ReadUvarint while keeping the
// checksum in sync.
type hashingByteReader struct{ d *decoder }

// ReadByte implements io.ByteReader.
func (r hashingByteReader) ReadByte() (byte, error) {
	b, err := r.d.r.ReadByte()
	if err != nil {
		return 0, err
	}
	r.d.h.Write([]byte{b})
	return b, nil
}
