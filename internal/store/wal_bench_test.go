package store

import (
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/faultfs"
)

// BenchmarkWALAppend measures the durable cost of logging one edit
// batch: frame + write + fsync of a typical op-batch payload. This is
// the marginal cost the WAL adds to every commit, to be read against
// BenchmarkSaveOnCommit (the full-document save each commit already
// paid before this PR).
func BenchmarkWALAppend(b *testing.B) {
	w, _, err := OpenWAL(faultfs.OS, filepath.Join(b.TempDir(), "d.wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := []byte(`{"ops":[{"op":"insert-markup","hierarchy":"annot","tag":"note","start":120,"end":134,"attrs":{"resp":"ed"}},{"op":"set-attr","hierarchy":"annot","index":0,"name":"status","value":"draft"}]}`)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(RecordOps, uint32(i), payload); err != nil {
			b.Fatal(err)
		}
		if w.Size() > 1<<20 {
			b.StopTimer()
			if err := w.Reset(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkSaveOnCommit measures the PR 5 per-commit persistence cost:
// one full atomic save (encode + fsync + rename + dir sync) of a
// words=8000/h=4 document.
func BenchmarkSaveOnCommit(b *testing.B) {
	cfg := corpus.DefaultConfig(8000)
	cfg.Hierarchies = 4
	doc, err := corpus.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "d.gdag")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Save(path, doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFingerprint measures the exactly-once-replay stamp: one
// encode pass with no I/O over the same words=8000/h=4 document.
func BenchmarkFingerprint(b *testing.B) {
	cfg := corpus.DefaultConfig(8000)
	cfg.Hierarchies = 4
	doc, err := corpus.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Fingerprint(doc) == 0 {
			b.Fatal("zero fingerprint")
		}
	}
}
