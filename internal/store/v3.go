package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/goddag"
)

// .gdag format v3: a section-table layout designed for
// open-without-decode. The file is a 16-byte header ("GDAG", version 3,
// little-endian section count), a directory of fixed 24-byte section
// entries (id, byte length, absolute offset, CRC-32C), a CRC-32C over
// header+directory, and then the 8-byte-aligned section payloads. The
// payloads are the document's columnar image (goddag.Columns) — content
// bytes, fixed-stride element columns, string table, and the serialized
// derived indexes — so a mapped reader validates the header, aliases
// the arrays in place, and never parses. Every multi-byte integer in a
// v3 file is little-endian and fixed-width, unlike v2's varint stream.
const (
	v3Version = 3

	v3HeaderLen = 16 // magic(4) + version(1) + pad(3) + nsec(4) + pad(4)
	v3EntryLen  = 24 // id(4) + len(4) + off(8) + crc(4) + pad(4)

	secMeta     = 1  // u32s: contentLen, rootTagID, nhier, nelems, nattrs, nleaves, nstrings, then {nameID,count} per hierarchy
	secContent  = 2  // raw content bytes
	secStrBlob  = 3  // concatenated string bytes
	secStrOff   = 4  // u32 × (nstrings+1): prefix offsets into StrBlob
	secTag      = 5  // u32 × nelems: tag string id, arena order
	secStart    = 6  // u32 × nelems: span start
	secEnd      = 7  // u32 × nelems: span end
	secParent   = 8  // i32 × nelems: parent arena index, -1 for top-level
	secPreEnd   = 9  // u32 × nelems: hierarchy-local pre-order subtree end
	secOrd      = 10 // u32 × nelems: document-order ordinal
	secAttrOff  = 11 // u32 × (nelems+1): prefix offsets into AttrName/AttrVal
	secAttrName = 12 // u32 × nattrs: attribute name string id
	secAttrVal  = 13 // u32 × nattrs: attribute value string id
	secCuts     = 14 // u32 × nleaves: partition leaf starts
	secLeafOrd  = 15 // i32 × nleaves: leaf ordinal
	secByOrd    = 16 // i32 × (1+nelems+nleaves): ordinal -> node
	secOrder    = 17 // u32 × nelems: document-order position -> arena index
	secSpanMax  = 18 // i32 × 4·nelems: span-index segment tree
	secBuckets  = 19 // u32 nbuckets, then {tagID,count} pairs, then concatenated positions

	secMax        = secBuckets
	v3MaxSections = 64
)

// EncodeV3 writes the document in the v3 section-table format. The
// output is deterministic for a given document. Documents whose content
// or counts exceed the u32 coordinate space are rejected (v2's varint
// form has the same practical bound via maxString).
func EncodeV3(w io.Writer, doc *goddag.Document) error {
	data, err := appendV3(nil, doc)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("store: encode v3: %w", err)
	}
	return nil
}

// appendV3 appends the complete v3 image of doc to buf.
func appendV3(buf []byte, doc *goddag.Document) ([]byte, error) {
	if doc.Content().Len() > math.MaxInt32 {
		return nil, fmt.Errorf("store: encode v3: content too large (%d bytes)", doc.Content().Len())
	}
	cols := doc.ExportColumns()
	if len(cols.Tag) > math.MaxInt32/4 {
		return nil, fmt.Errorf("store: encode v3: too many elements (%d)", len(cols.Tag))
	}

	// String table blob + offsets.
	blobLen := 0
	for _, s := range cols.Strings {
		blobLen += len(s)
	}
	blob := make([]byte, 0, blobLen)
	strOff := make([]uint32, 0, len(cols.Strings)+1)
	for _, s := range cols.Strings {
		strOff = append(strOff, uint32(len(blob)))
		blob = append(blob, s...)
	}
	strOff = append(strOff, uint32(len(blob)))

	strID := make(map[string]uint32, len(cols.Strings))
	for i, s := range cols.Strings {
		if _, ok := strID[s]; !ok {
			strID[s] = uint32(i)
		}
	}
	meta := make([]uint32, 0, 7+2*len(cols.Hiers))
	meta = append(meta,
		uint32(doc.Content().Len()),
		strID[doc.RootTag()],
		uint32(len(cols.Hiers)),
		uint32(len(cols.Tag)),
		uint32(len(cols.AttrName)),
		uint32(len(cols.Cuts)),
		uint32(len(cols.Strings)),
	)
	for _, hc := range cols.Hiers {
		id, ok := strID[hc.Name]
		if !ok {
			return nil, fmt.Errorf("store: encode v3: hierarchy name %q not interned", hc.Name)
		}
		meta = append(meta, id, uint32(hc.N))
	}

	var buckets []uint32
	buckets = append(buckets, uint32(len(cols.Buckets)))
	for _, b := range cols.Buckets {
		buckets = append(buckets, b.Tag, uint32(len(b.Pos)))
	}
	for _, b := range cols.Buckets {
		buckets = append(buckets, b.Pos...)
	}

	sections := []struct {
		id   uint32
		data []byte
	}{
		{secMeta, u32Bytes(meta)},
		{secContent, []byte(doc.Content().String())},
		{secStrBlob, blob},
		{secStrOff, u32Bytes(strOff)},
		{secTag, u32Bytes(cols.Tag)},
		{secStart, u32Bytes(cols.Start)},
		{secEnd, u32Bytes(cols.End)},
		{secParent, i32Bytes(cols.Parent)},
		{secPreEnd, u32Bytes(cols.PreEnd)},
		{secOrd, u32Bytes(cols.Ord)},
		{secAttrOff, u32Bytes(cols.AttrOff)},
		{secAttrName, u32Bytes(cols.AttrName)},
		{secAttrVal, u32Bytes(cols.AttrVal)},
		{secCuts, u32Bytes(cols.Cuts)},
		{secLeafOrd, i32Bytes(cols.LeafOrd)},
		{secByOrd, i32Bytes(cols.ByOrd)},
		{secOrder, u32Bytes(cols.Order)},
		{secSpanMax, i32Bytes(cols.SpanMax)},
		{secBuckets, u32Bytes(buckets)},
	}

	// Header + directory.
	dirEnd := v3HeaderLen + len(sections)*v3EntryLen
	off := align8(dirEnd + 4) // header CRC follows the directory
	start := len(buf)
	buf = append(buf, magic...)
	buf = append(buf, v3Version, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sections)))
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	for _, s := range sections {
		buf = binary.LittleEndian.AppendUint32(buf, s.id)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.data)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(off))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(s.data, crcTable))
		buf = binary.LittleEndian.AppendUint32(buf, 0)
		off += align8(len(s.data))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], crcTable))
	for _, s := range sections {
		for len(buf)-start < dirEnd+4 || (len(buf)-start)%8 != 0 {
			buf = append(buf, 0)
		}
		buf = append(buf, s.data...)
	}
	// Trailing alignment of the last section is not written: file length
	// equals the last section's end.
	return buf, nil
}

// align8 rounds up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// u32Bytes serializes a uint32 slice little-endian.
func u32Bytes(vs []uint32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// i32Bytes serializes an int32 slice little-endian (two's complement).
func i32Bytes(vs []int32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}
