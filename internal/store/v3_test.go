package store

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/corpus"
	"repro/internal/goddag"
	"repro/internal/xpath"
)

// encodeV3Bytes is the test shorthand for one in-memory v3 image.
func encodeV3Bytes(t *testing.T, doc *goddag.Document) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeV3(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openV3 maps a v3 image and materializes its document, failing the
// test on any validation error.
func openV3(t *testing.T, data []byte) *goddag.Document {
	t.Helper()
	m, err := OpenMappedBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := m.Document()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestV3RoundTripFig1(t *testing.T) {
	doc, err := corpus.Fig1Document()
	if err != nil {
		t.Fatal(err)
	}
	back := openV3(t, encodeV3Bytes(t, doc))
	if err := back.Check(); err != nil {
		t.Fatal(err)
	}
	if back.Stats() != doc.Stats() {
		t.Errorf("stats %+v != %+v", back.Stats(), doc.Stats())
	}
	if goddag.Dump(back) != goddag.Dump(doc) {
		t.Error("dumps differ after v3 mapped round trip")
	}
	if err := back.ViewErr(); err != nil {
		t.Errorf("view error after clean materialization: %v", err)
	}
}

func TestV3RoundTripEmptyDocument(t *testing.T) {
	doc := goddag.New("r", "")
	back := openV3(t, encodeV3Bytes(t, doc))
	if back.RootTag() != "r" || back.Content().Len() != 0 || len(back.Elements()) != 0 {
		t.Errorf("empty doc round trip: %q %d", back.RootTag(), back.Content().Len())
	}
}

// TestV3DecodeDispatch checks the streaming Decode entry point accepts
// v3 images (readers that cannot mmap still load every format).
func TestV3DecodeDispatch(t *testing.T) {
	doc, err := corpus.Generate(corpus.DefaultConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(encodeV3Bytes(t, doc)))
	if err != nil {
		t.Fatal(err)
	}
	if goddag.Dump(back) != goddag.Dump(doc) {
		t.Error("Decode of v3 image differs from source document")
	}
}

func TestV3EncodeDeterministic(t *testing.T) {
	doc, err := corpus.Generate(corpus.DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	a := encodeV3Bytes(t, doc)
	b := encodeV3Bytes(t, doc)
	if !bytes.Equal(a, b) {
		t.Fatal("EncodeV3 is not deterministic for the same document")
	}
	// Re-encoding a mapped open reproduces the image: the columnar
	// export is canonical.
	back := openV3(t, a)
	if c := encodeV3Bytes(t, back); !bytes.Equal(a, c) {
		t.Fatal("v3 image does not survive an open + re-encode")
	}
}

func TestOpenMappedV2ReportsErrV2(t *testing.T) {
	doc, err := corpus.Fig1Document()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil { // v2 on purpose
		t.Fatal(err)
	}
	if _, err := OpenMappedBytes(buf.Bytes()); !errors.Is(err, ErrV2) {
		t.Fatalf("v2 image: got %v, want ErrV2", err)
	}
	// Short prefixes of a v2 file also classify as v2, so callers fall
	// back to the decoder (which reports the real truncation error).
	if _, err := OpenMappedBytes(buf.Bytes()[:5]); !errors.Is(err, ErrV2) {
		t.Fatalf("short v2 image: got %v, want ErrV2", err)
	}
}

// TestV3DifferentialGrid holds the three load paths against each other
// across the corpus grid — hierarchy counts, overlap densities, and a
// multibyte vocabulary: the mapped v3 open, the streaming v2 decode,
// and the in-memory build must agree on structure, attributes, document
// order, and query results.
func TestV3DifferentialGrid(t *testing.T) {
	for _, words := range []int{60, 300} {
		for _, h := range []int{1, 2, 4, 8} {
			for _, density := range []float64{0.1, 0.5, 0.9} {
				for _, vocab := range [][]string{nil, corpus.MultibyteVocabulary} {
					cfg := corpus.DefaultConfig(words)
					cfg.Hierarchies = h
					cfg.OverlapDensity = density
					cfg.Vocabulary = vocab
					doc, err := corpus.Generate(cfg)
					if err != nil {
						t.Fatal(err)
					}

					var v2buf bytes.Buffer
					if err := Encode(&v2buf, doc); err != nil {
						t.Fatal(err)
					}
					v2doc, err := Decode(&v2buf)
					if err != nil {
						t.Fatal(err)
					}
					v3doc := openV3(t, encodeV3Bytes(t, doc))
					if err := v3doc.Check(); err != nil {
						t.Fatalf("words=%d h=%d d=%.1f: v3 check: %v", words, h, density, err)
					}

					want := goddag.Dump(doc)
					if got := goddag.Dump(v2doc); got != want {
						t.Fatalf("words=%d h=%d d=%.1f multibyte=%v: v2 decode differs from build",
							words, h, density, vocab != nil)
					}
					if got := goddag.Dump(v3doc); got != want {
						t.Fatalf("words=%d h=%d d=%.1f multibyte=%v: v3 mapped differs from build",
							words, h, density, vocab != nil)
					}

					// Document order and query behavior, not just shape:
					// an Extended XPath query exercises the ordinals, span
					// index, and name buckets on all three documents.
					for _, q := range []string{"//w", "count(//dmg)", "//line/w"} {
						want, err := xpath.Select(doc, q)
						if err != nil {
							// Value queries (count) go through Eval below.
							wv, werr := evalValue(doc, q)
							v2v, e2 := evalValue(v2doc, q)
							v3v, e3 := evalValue(v3doc, q)
							if werr != nil || e2 != nil || e3 != nil {
								t.Fatalf("query %q: %v %v %v", q, werr, e2, e3)
							}
							if wv != v2v || wv != v3v {
								t.Fatalf("query %q values differ: build=%v v2=%v v3=%v", q, wv, v2v, v3v)
							}
							continue
						}
						got2, err := xpath.Select(v2doc, q)
						if err != nil {
							t.Fatal(err)
						}
						got3, err := xpath.Select(v3doc, q)
						if err != nil {
							t.Fatal(err)
						}
						if len(got2) != len(want) || len(got3) != len(want) {
							t.Fatalf("query %q: build=%d v2=%d v3=%d results",
								q, len(want), len(got2), len(got3))
						}
					}
				}
			}
		}
	}
}

func evalValue(d *goddag.Document, q string) (string, error) {
	c, err := xpath.Compile(q)
	if err != nil {
		return "", err
	}
	v, err := c.Eval(d)
	if err != nil {
		return "", err
	}
	return v.String(), nil
}

// TestV3EditAfterOpenPromotes opens a mapped document, edits it (which
// must promote the lazily materialized state to the heap), and checks
// the result round-trips and matches the same edit applied to a fully
// heap-decoded copy.
func TestV3EditAfterOpenPromotes(t *testing.T) {
	cfg := corpus.DefaultConfig(120)
	cfg.Vocabulary = corpus.MultibyteVocabulary
	doc, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	image := encodeV3Bytes(t, doc)

	edit := func(d *goddag.Document) {
		t.Helper()
		h := d.Hierarchies()[0]
		if _, err := d.InsertElement(h, "patch", []goddag.Attr{{Name: "k", Value: "v"}}, spanOf(0, d.Content().Len())); err != nil {
			t.Fatal(err)
		}
		w := d.Hierarchies()[0].Elements()
		if err := d.RemoveElement(w[len(w)-1]); err != nil {
			t.Fatal(err)
		}
	}

	mapped := openV3(t, image)
	edit(mapped)
	if err := mapped.Check(); err != nil {
		t.Fatalf("edited mapped doc: %v", err)
	}
	if _, ok := mapped.ResidentFootprint(); ok {
		t.Error("edited mapped doc still reports a view-resident footprint")
	}

	heap, err := Decode(bytes.NewReader(image))
	if err != nil {
		t.Fatal(err)
	}
	edit(heap)

	if goddag.Dump(mapped) != goddag.Dump(heap) {
		t.Fatal("edit after mapped open diverges from edit after heap decode")
	}
	// The promoted document re-encodes like any heap document, and the
	// new image reloads to the same state: the v2 -> v3 migration path
	// (open, edit, save) is lossless.
	if goddag.Dump(openV3(t, encodeV3Bytes(t, mapped))) != goddag.Dump(heap) {
		t.Fatal("promoted document does not round-trip through v3")
	}
}

// TestV3CorruptionDetected flips a bit in every section payload and in
// the directory, and truncates at several boundaries: each mutation
// must surface as an error from open, document build, or full
// validation — never a panic, never a silently wrong document.
func TestV3CorruptionDetected(t *testing.T) {
	doc, err := corpus.Generate(corpus.DefaultConfig(80))
	if err != nil {
		t.Fatal(err)
	}
	image := encodeV3Bytes(t, doc)

	validate := func(data []byte) error {
		m, err := OpenMappedBytes(data)
		if err != nil {
			return err
		}
		return m.Validate()
	}
	if err := validate(image); err != nil {
		t.Fatalf("pristine image fails validation: %v", err)
	}

	// One flipped bit at every 7th byte across the file (covering the
	// header, directory, and every section) must be caught. The only
	// bytes no CRC covers are the alignment padding between sections —
	// they are never read, so flips there are harmless by construction.
	m, err := OpenMappedBytes(image)
	if err != nil {
		t.Fatal(err)
	}
	padding := func(off int) bool {
		for _, s := range m.secs {
			if off >= s.off && off < s.off+s.n {
				return false
			}
		}
		nsec := 0
		for _, ok := range m.present {
			if ok {
				nsec++
			}
		}
		return off >= v3HeaderLen+nsec*v3EntryLen+4
	}
	for off := 0; off < len(image); off += 7 {
		if padding(off) {
			continue
		}
		mut := bytes.Clone(image)
		mut[off] ^= 0x10
		if err := validate(mut); err == nil {
			t.Fatalf("bit flip at offset %d not detected", off)
		}
	}
	// Truncations anywhere must be caught.
	for _, cut := range []int{0, 3, v3HeaderLen - 1, v3HeaderLen + 5, len(image) / 2, len(image) - 1} {
		if err := validate(image[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestV3RejectsUnsupportedVersion(t *testing.T) {
	doc, _ := corpus.Fig1Document()
	image := encodeV3Bytes(t, doc)
	mut := bytes.Clone(image)
	mut[4] = 9
	if _, err := OpenMappedBytes(mut); err == nil || errors.Is(err, ErrV2) {
		t.Fatalf("future version: got %v", err)
	}
}
