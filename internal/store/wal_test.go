package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
)

func openTestWAL(t *testing.T, fsys faultfs.FS, path string) (*WAL, []Record) {
	t.Helper()
	w, recs, err := OpenWAL(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w, recs
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.wal")
	w, recs := openTestWAL(t, faultfs.OS, path)
	if len(recs) != 0 || !w.Empty() {
		t.Fatalf("fresh WAL: %d records, empty=%v", len(recs), w.Empty())
	}
	batches := [][]byte{
		[]byte(`{"ops":[{"op":"set-attr"}]}`),
		[]byte(`{"ops":[{"op":"insert-markup","tag":"w"}]}`),
	}
	if err := w.Append(RecordOps, 0x11111111, batches[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(RecordOps, 0x22222222, batches[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(RecordSnapshot, 0, []byte("GDAGsnap")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, recs := openTestWAL(t, faultfs.OS, path)
	if len(recs) != 3 {
		t.Fatalf("reopened with %d records, want 3", len(recs))
	}
	if recs[0].Kind != RecordOps || recs[0].Pre != 0x11111111 || !bytes.Equal(recs[0].Payload, batches[0]) {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Pre != 0x22222222 || !bytes.Equal(recs[1].Payload, batches[1]) {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	if recs[2].Kind != RecordSnapshot || string(recs[2].Payload) != "GDAGsnap" {
		t.Fatalf("record 2 = %+v", recs[2])
	}

	// Reset empties; a further append starts a new tail.
	if err := w2.Reset(); err != nil {
		t.Fatal(err)
	}
	if !w2.Empty() {
		t.Fatal("Reset left records")
	}
	if err := w2.Append(RecordOps, 7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, recs = openTestWAL(t, faultfs.OS, path)
	if len(recs) != 1 || recs[0].Pre != 7 {
		t.Fatalf("after reset+append: %+v", recs)
	}
}

// TestWALTornTailTruncated cuts a WAL at every possible byte length and
// asserts reopening always recovers exactly the records whose frames
// fully survived — the power-cut contract.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	w, _ := openTestWAL(t, faultfs.OS, full)
	payloads := [][]byte{[]byte("first"), []byte("second-longer"), []byte("third")}
	offsets := []int64{w.Size()} // durable size after 0,1,2,3 records
	for i, p := range payloads {
		if err := w.Append(RecordOps, uint32(i), p); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, w.Size())
	}
	w.Close()
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(data); cut++ {
		torn := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, recs, err := OpenWAL(faultfs.OS, torn)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// The number of surviving records is the number of whole frames
		// within the cut.
		want := 0
		for want < len(payloads) && offsets[want+1] <= int64(cut) {
			want++
		}
		if len(recs) != want {
			t.Fatalf("cut %d: %d records survived, want %d", cut, len(recs), want)
		}
		for i, r := range recs {
			if !bytes.Equal(r.Payload, payloads[i]) {
				t.Fatalf("cut %d record %d: %q", cut, i, r.Payload)
			}
		}
		// The segment is appendable again after the torn tail is cut.
		if err := w2.Append(RecordOps, 9, []byte("post")); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		w2.Close()
		_, recs2, err := OpenWAL(faultfs.OS, torn)
		if err != nil || len(recs2) != want+1 {
			t.Fatalf("cut %d: re-reopen %d records, %v", cut, len(recs2), err)
		}
	}
}

// TestWALBitFlipStopsScan flips each byte of a record region in turn;
// the scan must never return a corrupted payload as valid.
func TestWALBitFlipStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.wal")
	w, _ := openTestWAL(t, faultfs.OS, path)
	if err := w.Append(RecordOps, 1, []byte("payload-one")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(RecordOps, 2, []byte("payload-two")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	region := data[WALHeaderLen:]
	for i := range region {
		flipped := append([]byte(nil), region...)
		flipped[i] ^= 0x40
		recs, _ := ScanWALRecords(flipped)
		for _, r := range recs {
			if s := string(r.Payload); s != "payload-one" && s != "payload-two" {
				t.Fatalf("flip at %d surfaced corrupted payload %q", i, s)
			}
		}
	}
}

// TestWALFailedAppendRewinds injects a sync failure mid-append and
// asserts the segment is rewound to the previous record boundary: the
// failed record must not resurface on reopen.
func TestWALFailedAppendRewinds(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	path := filepath.Join(t.TempDir(), "d.wal")
	w, _ := openTestWAL(t, inj, path)
	if err := w.Append(RecordOps, 1, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	errDisk := errors.New("injected: EIO")
	inj.SetHook(func(op faultfs.Op, p string) error {
		if op == faultfs.OpSync {
			return errDisk
		}
		return nil
	})
	if err := w.Append(RecordOps, 2, []byte("lost")); !errors.Is(err, errDisk) {
		t.Fatalf("append under sync fault = %v", err)
	}
	inj.SetHook(nil)
	w.Close()

	_, recs, err := OpenWAL(faultfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "keep" {
		t.Fatalf("after failed append: %+v", recs)
	}
}

// TestWALVetoRewind drops a logged batch whose transaction was vetoed.
func TestWALVetoRewind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.wal")
	w, _ := openTestWAL(t, faultfs.OS, path)
	if err := w.Append(RecordOps, 1, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	mark := w.Size()
	if err := w.Append(RecordOps, 2, []byte("vetoed")); err != nil {
		t.Fatal(err)
	}
	if err := w.Rewind(mark); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, recs, err := OpenWAL(faultfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "committed" {
		t.Fatalf("after veto rewind: %+v", recs)
	}
}
