package obs

import (
	"flag"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry builds a deterministic registry covering every metric
// shape the exposition renders: labelled and unlabelled counters,
// gauges, func-backed series, and a histogram with sub-second bounds.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("cx_http_requests_total", "Requests served, by route and status class.", `route="query",class="2xx"`).Add(41)
	r.Counter("cx_http_requests_total", "Requests served, by route and status class.", `route="query",class="5xx"`).Inc()
	r.Counter("cx_http_requests_total", "Requests served, by route and status class.", `route="stats",class="2xx"`).Add(7)
	r.Gauge("cx_http_inflight", "Requests currently being served.", "").Set(3)
	r.CounterFunc("cx_catalog_loads_total", "Documents loaded from source.", "", func() float64 { return 12 })
	r.GaugeFunc("cx_catalog_resident_bytes", "Estimated footprint of resident documents.", "", func() float64 { return 1.5e6 })
	h := r.Histogram("cx_http_request_seconds", "Request latency.", `route="query"`,
		[]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(2 * time.Second)
	return r
}

// TestExpositionGolden pins the exact exposition bytes: family and
// series order, HELP/TYPE lines, histogram expansion, float rendering.
func TestExpositionGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	const path = "testdata/exposition.golden"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// sampleLine matches one text-format sample: name{labels} value.
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*")*\})? (\+Inf|-?[0-9.e+-]+)$`)

// TestExpositionParses walks every emitted line through a v0.0.4
// grammar check and re-derives the histogram invariants from the text:
// cumulative buckets non-decreasing, le="+Inf" present and equal to
// _count.
func TestExpositionParses(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var (
		lastCum  = -1.0
		infSeen  bool
		infVal   float64
		countVal = -1.0
	)
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line does not parse as a sample: %q", line)
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		switch {
		case strings.HasPrefix(m[1], "cx_http_request_seconds_bucket"):
			if v < lastCum {
				t.Fatalf("bucket series decreased: %q after cum=%v", line, lastCum)
			}
			lastCum = v
			if strings.Contains(m[2], `le="+Inf"`) {
				infSeen, infVal = true, v
			}
		case m[1] == "cx_http_request_seconds_count":
			countVal = v
		}
	}
	if !infSeen {
		t.Fatal("histogram emitted no le=\"+Inf\" bucket")
	}
	if countVal != infVal {
		t.Fatalf("_count %v != +Inf bucket %v", countVal, infVal)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := goldenRegistry()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "cx_http_requests_total") {
		t.Fatal("body missing metrics")
	}
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics: status %d, want 405", rec.Code)
	}
}
