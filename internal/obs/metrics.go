// Package obs is the framework's zero-dependency observability layer:
// a metrics registry (counters, gauges, fixed-bucket latency histograms
// with Prometheus text exposition) and a request-scoped stage tracer.
//
// The package exists to instrument the serving path without costing it
// anything when observation is off, so two properties shape every type:
//
//   - Lock-free hot paths. Counter.Add, Gauge.Set, and
//     Histogram.Observe are single atomic operations (the histogram adds
//     one more per bucket hit); no metric update takes a lock or
//     allocates. The registry's mutex guards registration and scraping
//     only — both off the request path.
//
//   - Nil safety. Every observation method is a no-op on a nil
//     receiver, so instrumented code threads optional metric handles
//     without conditionals: a layer constructed without a registry holds
//     nil handles and pays one predictable branch per observation.
//
// Scrapes are wait-free with respect to writers: a histogram scraped
// mid-observation may see the bucket increment before the sum (or vice
// versa), which is the standard contract for lock-free metrics — each
// exposed value is individually atomic, the set is not a snapshot.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Counter is a monotonically increasing value. The zero value is
// usable; a nil *Counter discards observations.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is a value that can go up and down. The zero value is usable;
// a nil *Gauge discards observations.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// A Histogram counts observations into fixed buckets — the
// latency-distribution primitive. Buckets are cumulative only at
// exposition; internally each bound has its own atomic counter, so
// Observe is two atomic adds plus a short linear scan (the bound slice
// is immutable after construction). A nil *Histogram discards
// observations.
//
// Two flavors share the type: duration histograms (Registry.Histogram,
// bounds in nanoseconds, exposed in seconds) and raw value histograms
// (Registry.ValueHistogram, bounds in the value's own unit — bytes for
// ByteBuckets — exposed as plain integers). The raw flag only changes
// exposition formatting.
type Histogram struct {
	bounds []int64         // upper bounds (nanoseconds, or raw units), ascending
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomic.Int64    // nanoseconds, or raw units
	count  atomic.Uint64
	raw    bool // value histogram: bounds are unit-less integers
}

// DefBuckets spans the serving layer's interesting range: 50µs request
// handling up through multi-second cold loads and stalled saves.
var DefBuckets = []time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 250 * time.Microsecond,
	500 * time.Microsecond, time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, time.Second, 2500 * time.Millisecond,
	5 * time.Second, 10 * time.Second,
}

// ByteBuckets is the default bound set for size-shaped value
// histograms: powers of four from 1 KiB to 256 MiB, the range a
// document section or mapped file plausibly spans.
var ByteBuckets = []int64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
}

func newHistogram(buckets []time.Duration) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := make([]int64, len(buckets))
	for i, b := range buckets {
		bounds[i] = int64(b)
	}
	return newRawHistogram(bounds, false)
}

func newRawHistogram(bounds []int64, raw bool) *Histogram {
	h := &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
		raw:    raw,
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly ascending at %d", i))
		}
	}
	return h
}

// Observe records one duration. Negative durations (clock retrograde)
// count into the first bucket.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveValue(int64(d))
}

// ObserveValue records one raw observation — the unit-less entry point
// value histograms use (bytes, counts). Negative values count into the
// first bucket.
func (h *Histogram) ObserveValue(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// HistogramSnapshot is one scrape of a histogram: per-bucket
// (non-cumulative) counts aligned with Bounds, plus the +Inf overflow as
// the final count. For a raw value histogram Bounds and Sum carry the
// unit-less integers reinterpreted as time.Duration (1 unit = 1ns);
// check Raw before formatting them as durations.
type HistogramSnapshot struct {
	Bounds []time.Duration // upper bounds; Counts has one extra +Inf slot
	Counts []uint64
	Count  uint64
	Sum    time.Duration
	Raw    bool // value histogram: Bounds/Sum are unit-less integers
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: make([]time.Duration, len(h.bounds)),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    time.Duration(h.sum.Load()),
		Raw:    h.raw,
	}
	for i, b := range h.bounds {
		s.Bounds[i] = time.Duration(b)
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// within the bucket holding the target rank — the same estimate
// Prometheus's histogram_quantile computes. Observations in the +Inf
// bucket clamp to the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := float64(0)
	for i, c := range s.Counts {
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: no upper bound to interpolate toward.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - (cum - float64(c))) / float64(c)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// metricKind is the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (family, label-set) time series.
type series struct {
	labels string // pre-formatted `k="v",k2="v2"`, "" for none
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // func-backed counter/gauge; overrides c/g
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	byLbl  map[string]*series
}

// Registry holds a process's metrics. Registration and scraping are
// mutex-guarded; the returned metric handles are lock-free. Create with
// NewRegistry; a nil *Registry accepts registrations and returns nil
// handles, so layers built without a registry are silently
// uninstrumented.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor returns (creating if needed) the family, enforcing that one
// name keeps one kind and one help string.
func (r *Registry) familyFor(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byLbl: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

func (f *family) seriesFor(labels string) *series {
	s, ok := f.byLbl[labels]
	if !ok {
		s = &series{labels: labels}
		f.byLbl[labels] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter registers (or returns the existing) counter for name+labels.
// labels is a pre-formatted Prometheus label body (`route="query"`) or
// "" for an unlabelled series.
func (r *Registry) Counter(name, help, labels string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.familyFor(name, help, kindCounter).seriesFor(labels)
	if s.c == nil {
		s.c = new(Counter)
	}
	return s.c
}

// Gauge registers (or returns the existing) gauge for name+labels.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.familyFor(name, help, kindGauge).seriesFor(labels)
	if s.g == nil {
		s.g = new(Gauge)
	}
	return s.g
}

// Histogram registers (or returns the existing) histogram for
// name+labels. buckets nil means DefBuckets; bucket sets are fixed at
// first registration.
func (r *Registry) Histogram(name, help, labels string, buckets []time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.familyFor(name, help, kindHistogram).seriesFor(labels)
	if s.h == nil {
		s.h = newHistogram(buckets)
	}
	return s.h
}

// ValueHistogram registers (or returns the existing) raw value
// histogram for name+labels: bounds are unit-less integers (bytes,
// counts) rather than durations, and exposition renders them as plain
// integers. bounds nil means ByteBuckets.
func (r *Registry) ValueHistogram(name, help, labels string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.familyFor(name, help, kindHistogram).seriesFor(labels)
	if s.h == nil {
		if bounds == nil {
			bounds = ByteBuckets
		}
		s.h = newRawHistogram(bounds, true)
	}
	return s.h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the drift-proof way to expose a total another subsystem
// already maintains (the catalog's load counters, the query cache's
// hits) without double-counting it.
func (r *Registry) CounterFunc(name, help, labels string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.familyFor(name, help, kindCounter).seriesFor(labels).fn = fn
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.familyFor(name, help, kindGauge).seriesFor(labels).fn = fn
}

// sortedFamilies returns the families in name order and each family's
// series in label order — the stable exposition order. Called under mu.
func (r *Registry) sortedFamilies() []*family {
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	for _, f := range out {
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	}
	return out
}

// escapeHelp escapes a HELP string per the text format (backslash and
// newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
