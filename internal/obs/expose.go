package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
)

// This file renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP and TYPE line per family, then one
// sample line per series — histograms expand into cumulative _bucket
// series (ending at le="+Inf"), _sum, and _count. Families are emitted
// in name order and series in label order, so scrapes diff cleanly and
// the golden-file test is stable.

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := r.sortedFamilies()
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	var scratch []byte
	for _, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			if f.kind == kindHistogram {
				scratch = writeHistogramSeries(bw, f.name, s, scratch)
				continue
			}
			scratch = scratch[:0]
			switch {
			case s.fn != nil:
				scratch = appendFloat(scratch, s.fn())
			case s.c != nil:
				scratch = strconv.AppendUint(scratch, s.c.Value(), 10)
			case s.g != nil:
				scratch = strconv.AppendInt(scratch, s.g.Value(), 10)
			default:
				scratch = append(scratch, '0')
			}
			writeSample(bw, f.name, s.labels, "", scratch)
		}
	}
	return bw.Flush()
}

// writeHistogramSeries expands one histogram series into its _bucket /
// _sum / _count samples. Returns the (possibly grown) scratch buffer.
func writeHistogramSeries(bw *bufio.Writer, name string, s *series, scratch []byte) []byte {
	snap := s.h.Snapshot()
	cum := uint64(0)
	for i, c := range snap.Counts {
		cum += c
		le := "+Inf"
		if i < len(snap.Bounds) {
			if snap.Raw {
				scratch = strconv.AppendInt(scratch[:0], int64(snap.Bounds[i]), 10)
			} else {
				scratch = appendFloat(scratch[:0], snap.Bounds[i].Seconds())
			}
			le = string(scratch)
		}
		scratch = strconv.AppendUint(scratch[:0], cum, 10)
		writeSample(bw, name+"_bucket", s.labels, `le="`+le+`"`, scratch)
	}
	if snap.Raw {
		scratch = strconv.AppendInt(scratch[:0], int64(snap.Sum), 10)
	} else {
		scratch = appendFloat(scratch[:0], snap.Sum.Seconds())
	}
	writeSample(bw, name+"_sum", s.labels, "", scratch)
	scratch = strconv.AppendUint(scratch[:0], snap.Count, 10)
	writeSample(bw, name+"_count", s.labels, "", scratch)
	return scratch
}

// writeSample emits one `name{labels,extra} value` line. labels and
// extra are pre-formatted label bodies; either may be empty.
func writeSample(bw *bufio.Writer, name, labels, extra string, value []byte) {
	bw.WriteString(name)
	if labels != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.Write(value)
	bw.WriteByte('\n')
}

// appendFloat renders a float the way the exposition format expects:
// shortest representation, integers without an exponent where possible.
func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in the text
// exposition format — mounted at GET /metrics by the server and the
// debug listener.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		if req.Method == http.MethodHead {
			return
		}
		r.WritePrometheus(w)
	})
}
