package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Begin("eval") // must not read the clock or panic
	sp.End()
	tr.Add("x", time.Second)
	tr.AddVisited(5)
	if tr.Visited() != 0 || tr.Total() != 0 || tr.Stages() != nil || tr.String() != "" {
		t.Fatal("nil trace must observe nothing")
	}
	if TraceFrom(nil) != nil || TraceFrom(context.Background()) != nil {
		t.Fatal("TraceFrom must be nil on contexts without a trace")
	}
	if ctx := WithTrace(context.Background(), nil); TraceFrom(ctx) != nil {
		t.Fatal("attaching a nil trace must be a no-op")
	}
}

func TestTraceStagesMergeByName(t *testing.T) {
	tr := NewTrace("r1")
	tr.Add("eval", 2*time.Millisecond)
	tr.Add("encode", time.Millisecond)
	tr.Add("eval", 3*time.Millisecond) // FLWOR-style repeated stage
	st := tr.Stages()
	if len(st) != 2 {
		t.Fatalf("stages = %d, want 2 (merged)", len(st))
	}
	if st[0].Name != "eval" || st[0].Dur != 5*time.Millisecond {
		t.Fatalf("eval stage = %+v", st[0])
	}
	if st[1].Name != "encode" || st[1].Dur != time.Millisecond {
		t.Fatalf("encode stage = %+v", st[1])
	}
}

func TestTraceSpansAndContext(t *testing.T) {
	tr := NewTrace("r2")
	ctx := WithTrace(context.Background(), tr)
	got := TraceFrom(ctx)
	if got != tr {
		t.Fatal("TraceFrom must return the attached trace")
	}
	sp := got.Begin("sleep")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	st := tr.Stages()
	if len(st) != 1 || st[0].Name != "sleep" {
		t.Fatalf("stages = %+v", st)
	}
	if st[0].Dur < time.Millisecond {
		t.Fatalf("span duration %v implausibly short", st[0].Dur)
	}
	if tot := tr.Total(); tot < st[0].Dur {
		t.Fatalf("total %v < stage sum %v", tot, st[0].Dur)
	}
}

func TestTraceString(t *testing.T) {
	tr := NewTrace("r3")
	tr.Add("lockWait", 1500*time.Nanosecond)
	tr.Add("eval", 340*time.Microsecond)
	tr.AddVisited(2000)
	s := tr.String()
	for _, want := range []string{"lockWait=", "eval=340µs", "visited=2000"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
