package obs

import (
	"context"
	"strconv"
	"strings"
	"time"
)

// The stage tracer answers "where did this request's time go": named,
// sequential stage spans (decode → lock wait → load → compile → plan →
// eval → encode) recorded on one request's Trace, which rides the
// request context. The design constraint is the serving layer's flat
// allocation budget: when tracing is off the fast path carries a nil
// *Trace, every method is a nil-guarded no-op, and the only cost is the
// context value lookup at the few seams that ask for it. A Trace is
// single-goroutine state, like the request handler it instruments.

// Stage is one named span's accumulated duration. Repeated spans with
// the same name (a FLWOR's per-clause evaluations, retried saves) merge
// into one stage, so the breakdown stays bounded and readable.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Trace accumulates one request's stage breakdown.
type Trace struct {
	ID      string // request id, for log correlation
	start   time.Time
	stages  []Stage
	visited int64 // nodes visited by query evaluation, when counted
}

// NewTrace starts a trace identified by id.
func NewTrace(id string) *Trace {
	return &Trace{ID: id, start: time.Now()}
}

// NewTraceAt is NewTrace with an explicit start time — for callers
// that decide to trace only after the request's first stages already
// ran (the serving layer reads the trace flag out of the body it is
// timing the decode of).
func NewTraceAt(id string, start time.Time) *Trace {
	return &Trace{ID: id, start: start}
}

// Span is an open stage; End closes it. The zero Span (from a nil
// Trace) is a no-op, so callers never branch.
type Span struct {
	t     *Trace
	name  string
	begin time.Time
}

// Begin opens a named stage span. On a nil Trace it returns the no-op
// zero Span without reading the clock.
func (t *Trace) Begin(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, begin: time.Now()}
}

// End closes the span, folding its duration into the trace.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Add(s.name, time.Since(s.begin))
}

// Add folds d into the named stage directly — for durations measured
// before the trace existed (request decode precedes the trace decision)
// or measured by other means.
func (t *Trace) Add(name string, d time.Duration) {
	if t == nil {
		return
	}
	for i := range t.stages {
		if t.stages[i].Name == name {
			t.stages[i].Dur += d
			return
		}
	}
	t.stages = append(t.stages, Stage{Name: name, Dur: d})
}

// AddVisited folds n evaluation-visited nodes into the trace.
func (t *Trace) AddVisited(n int64) {
	if t != nil {
		t.visited += n
	}
}

// Visited returns the nodes visited by the traced evaluations. Zero
// when the evaluation ran without a counting limiter.
func (t *Trace) Visited() int64 {
	if t == nil {
		return 0
	}
	return t.visited
}

// Stages returns the recorded stages in first-recorded order. The
// slice is the trace's own; callers must not modify it.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	return t.stages
}

// Total is the wall time since the trace started.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// String renders the breakdown compactly for log lines:
// "lockWait=1µs eval=340µs encode=82µs visited=2000".
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for i, st := range t.stages {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(st.Name)
		b.WriteByte('=')
		b.WriteString(st.Dur.Round(time.Microsecond).String())
	}
	if t.visited > 0 {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString("visited=")
		b.WriteString(strconv.FormatInt(t.visited, 10))
	}
	return b.String()
}

// traceKey keys the Trace on a context.
type traceKey struct{}

// WithTrace attaches t to ctx. Attaching nil returns ctx unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the Trace riding ctx, or nil — the nil-guarded
// handle instrumented layers observe into. Safe on a nil context.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
