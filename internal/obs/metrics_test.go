package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metrics must observe nothing")
	}
	var r *Registry
	if r.Counter("x", "", "") != nil || r.Gauge("x", "", "") != nil || r.Histogram("x", "", "", nil) != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	r.CounterFunc("x", "", "", nil)
	r.GaugeFunc("x", "", "", nil)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryDedupsSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("cx_x_total", "x", `k="a"`)
	b := r.Counter("cx_x_total", "x", `k="a"`)
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("cx_x_total", "x", `k="b"`)
	if a == c {
		t.Fatal("different labels must return a distinct series")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("cx_x_total", "x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("cx_x_total", "x", "")
}

// TestHistogramInvariants pins the exposition contract: cumulative
// bucket counts are monotonically non-decreasing, the +Inf bucket equals
// _count, and the sum matches the observations.
func TestHistogramInvariants(t *testing.T) {
	h := newHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	obs := []time.Duration{
		500 * time.Microsecond,   // bucket 0
		time.Millisecond,         // bucket 0 (le is inclusive)
		time.Millisecond + 1,     // bucket 1
		9 * time.Millisecond,     // bucket 1
		99 * time.Millisecond,    // bucket 2
		time.Second,              // +Inf
		-time.Second,             // clamped to 0, bucket 0
		100*time.Millisecond + 1, // +Inf
		100 * time.Millisecond,   // bucket 2 boundary
		time.Duration(0),         // bucket 0
	}
	var want time.Duration
	for _, d := range obs {
		h.Observe(d)
		if d < 0 {
			d = 0
		}
		want += d
	}
	s := h.Snapshot()
	if s.Count != uint64(len(obs)) {
		t.Fatalf("count = %d, want %d", s.Count, len(obs))
	}
	if s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	wantBuckets := []uint64{4, 2, 2, 2}
	cum := uint64(0)
	prev := uint64(0)
	for i, c := range s.Counts {
		if c != wantBuckets[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, wantBuckets[i])
		}
		cum += c
		if cum < prev {
			t.Fatalf("cumulative count decreased at bucket %d", i)
		}
		prev = cum
	}
	if cum != s.Count {
		t.Fatalf("+Inf cumulative %d != count %d", cum, s.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	// 90 observations in (1ms,10ms], 10 in (10ms,100ms].
	for i := 0; i < 90; i++ {
		h.Observe(5 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 <= time.Millisecond || p50 > 10*time.Millisecond {
		t.Errorf("p50 = %v, want within (1ms,10ms]", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 <= 10*time.Millisecond || p99 > 100*time.Millisecond {
		t.Errorf("p99 = %v, want within (10ms,100ms]", p99)
	}
	if p50 >= p99 {
		t.Errorf("p50 %v >= p99 %v", p50, p99)
	}
	// Everything in the overflow bucket clamps to the largest bound.
	over := newHistogram([]time.Duration{time.Millisecond})
	over.Observe(time.Hour)
	if got := over.Snapshot().Quantile(0.5); got != time.Millisecond {
		t.Errorf("overflow quantile = %v, want clamp to 1ms", got)
	}
}

// TestConcurrentObserve hammers one histogram and one counter from many
// goroutines while scraping concurrently — run under -race in CI; the
// final totals must be exact (no lost updates).
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cx_ops_total", "ops", "")
	h := r.Histogram("cx_lat_seconds", "lat", "", nil)
	const workers, each = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent scraper
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				r.WritePrometheus(&sb)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(time.Duration(seed*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*each)
	}
	cum := uint64(0)
	for _, bc := range s.Counts {
		cum += bc
	}
	if cum != s.Count {
		t.Fatalf("bucket sum %d != count %d", cum, s.Count)
	}
}
