package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
	"repro/internal/corpus"
	"repro/internal/validate"
)

func fig1(t *testing.T) *repro.Document {
	t.Helper()
	doc, err := repro.Parse(corpus.Fig1Sources())
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseAndQuery(t *testing.T) {
	doc := fig1(t)
	hits, err := doc.Query("//dmg/overlapping::w")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Errorf("hits = %d", len(hits))
	}
	v, err := doc.QueryValue("count(//w)")
	if err != nil {
		t.Fatal(err)
	}
	if v.Number() != 6 {
		t.Errorf("count = %v", v.Number())
	}
}

func TestNewAndEdit(t *testing.T) {
	doc := repro.New("r", "hello world")
	s := doc.Edit()
	if _, err := s.InsertMarkup("words", "w", repro.NewSpan(0, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertMarkup("emphasis", "em", repro.NewSpan(3, 8)); err != nil {
		t.Fatal(err)
	}
	hits, err := doc.Query("//w/overlapping::em")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Errorf("overlap = %d", len(hits))
	}
}

func TestSetDTDAndValidate(t *testing.T) {
	doc := fig1(t)
	err := doc.SetDTD("words", []byte(`
<!ELEMENT r (#PCDATA|w)*>
<!ELEMENT w (#PCDATA)>
`))
	if err != nil {
		t.Fatal(err)
	}
	if viols := doc.Validate(repro.Potential); len(viols) != 0 {
		t.Errorf("violations: %v", viols)
	}
	if err := doc.SetDTD("words", []byte(`<!ELEMENT bad`)); err == nil {
		t.Error("bad DTD should error")
	}
}

func TestPrevalidation(t *testing.T) {
	doc := fig1(t)
	if err := doc.SetDTD("words", []byte(`
<!ELEMENT r (#PCDATA|w)*>
<!ELEMENT w (#PCDATA)>
`)); err != nil {
		t.Fatal(err)
	}
	doc.EnablePrevalidation()
	// A <w> inside a <w> violates the (#PCDATA) model.
	if _, err := doc.Edit().InsertMarkup("words", "w", repro.NewSpan(1, 2)); err == nil {
		t.Error("nested w should be vetoed")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	doc := fig1(t)
	for _, f := range []repro.Format{repro.FormatMilestones, repro.FormatFragmentation, repro.FormatStandoff} {
		out, err := doc.Export(f, repro.EncodeOptions{})
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		back, err := repro.Import(f, out["document"])
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if back.Stats() != doc.Stats() {
			t.Errorf("%v: stats %+v != %+v", f, back.Stats(), doc.Stats())
		}
	}
	// Distributed export round-trips through Parse.
	out, err := doc.Export(repro.FormatDistributed, repro.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var srcs []repro.Source
	for _, h := range doc.GODDAG().HierarchyNames() {
		srcs = append(srcs, repro.Source{Hierarchy: h, Data: out[h]})
	}
	back, err := repro.Parse(srcs)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != doc.Stats() {
		t.Errorf("distributed: stats differ")
	}
}

func TestImportErrors(t *testing.T) {
	if _, err := repro.Import(repro.FormatDistributed, nil); err == nil {
		t.Error("distributed Import should error (use Parse)")
	}
	if _, err := repro.Import(repro.Format(99), nil); err == nil {
		t.Error("unknown format should error")
	}
	if _, err := repro.Import(repro.FormatStandoff, []byte("garbage")); err == nil {
		t.Error("garbage should error")
	}
}

func TestFilter(t *testing.T) {
	doc := fig1(t)
	sub, err := doc.Filter("words", "damage")
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.GODDAG().HierarchyNames(); len(got) != 2 {
		t.Errorf("hierarchies = %v", got)
	}
	if _, err := doc.Filter("zzz"); err == nil {
		t.Error("unknown hierarchy should error")
	}
}

func TestFilterCarriesDTDs(t *testing.T) {
	doc := fig1(t)
	doc.SetDTD("words", []byte(`<!ELEMENT r (#PCDATA|w)*> <!ELEMENT w (#PCDATA)>`))
	sub, err := doc.Filter("words")
	if err != nil {
		t.Fatal(err)
	}
	if sub.Schema().DTD("words") == nil {
		t.Error("DTD lost in filter")
	}
}

func TestCompiledQueryReuse(t *testing.T) {
	doc := fig1(t)
	q, err := repro.Compile("count(//w)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		v, err := q.Eval(doc.GODDAG())
		if err != nil {
			t.Fatal(err)
		}
		if v.Number() != 6 {
			t.Errorf("run %d: %v", i, v.Number())
		}
	}
}

func TestEndToEndPipeline(t *testing.T) {
	// The E8 demo flow: parse -> query -> edit -> prevalidate -> export a
	// filtered view.
	doc := fig1(t)
	if err := doc.SetDTD("notes", []byte(`
<!ELEMENT r (#PCDATA|note)*>
<!ELEMENT note (#PCDATA)>
<!ATTLIST note resp CDATA #REQUIRED>
`)); err != nil {
		t.Fatal(err)
	}
	doc.EnablePrevalidation()

	// Find the damaged words and annotate the first one.
	hits, err := doc.Query("//dmg/overlapping::w")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no damaged words")
	}
	first := hits[0].(*repro.Element)
	note, err := doc.Edit().InsertMarkup("notes", "note", first.Span(), repro.Attr{Name: "resp", Value: "IEI"})
	if err != nil {
		t.Fatal(err)
	}
	if note.Text() != first.Text() {
		t.Errorf("note text %q != word text %q", note.Text(), first.Text())
	}
	// Potentially valid (required attr present, content fits).
	if viols := doc.Validate(validate.Potential); len(viols) != 0 {
		t.Errorf("violations: %v", viols)
	}
	// Export only the notes view.
	view, err := doc.Filter("notes")
	if err != nil {
		t.Fatal(err)
	}
	out, err := view.Export(repro.FormatDistributed, repro.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out["notes"]), "<note") {
		t.Errorf("notes view missing note element: %s", out["notes"])
	}
}

func TestSaveLoad(t *testing.T) {
	doc := fig1(t)
	var buf bytes.Buffer
	if err := doc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := repro.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != doc.Stats() {
		t.Errorf("stats %+v != %+v", back.Stats(), doc.Stats())
	}
	// Loaded documents answer the same queries.
	a, err := doc.Query("//dmg/overlapping::w")
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Query("//dmg/overlapping::w")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Errorf("query results differ: %d vs %d", len(a), len(b))
	}
	if _, err := repro.Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk should fail to load")
	}
}
